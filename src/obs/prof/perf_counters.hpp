// Scoped hardware-counter profiling (docs/performance.md "Profiling").
//
// A PerfCounterSet owns one thread's counter file descriptors (perf_event_open
// with pid = self, cpu = any: cycles, instructions, cache-misses,
// branch-misses, task-clock). A PerfRegion reads the set on entry and exit and
// accumulates the inclusive delta into `prof.<name>.*` counters of the active
// metrics registry — which means per-thread scratch registries and the
// run_all() absorb machinery attribute cycles per sweep point with no extra
// plumbing.
//
// Backends, resolved once per process (forceable via JRSND_PROF_BACKEND or
// set_prof_backend):
//   * kPerfEvent    — real hardware counters. Requires a PMU and a
//                     perf_event_paranoid level that admits self-profiling.
//   * kClockFallback — clock_gettime(CLOCK_THREAD_CPUTIME_ID). task_clock_ns
//                     is exact; cycles are *estimated* (ns x JRSND_PROF_GHZ,
//                     default 1.0); instructions and miss counts read 0.
//                     Containers, VMs without vPMU, and non-Linux land here.
// Every API below stays callable under either backend — callers never need
// to know which one is live; the `prof.backend` gauge (2 = perf_event,
// 1 = clock fallback, 0 = off) says which numbers mean what.
//
// Profiling is OFF by default: a disabled JRSND_PERF_REGION site costs one
// relaxed atomic load, and the transmit hot path stays zero-allocation (the
// perf_alloc audit covers an instrumented path).
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/metrics_registry.hpp"

namespace jrsnd::obs::prof {

enum class ProfBackend : std::uint8_t { kOff = 0, kClockFallback = 1, kPerfEvent = 2 };

[[nodiscard]] const char* backend_name(ProfBackend backend) noexcept;

/// The backend counter reads resolve to. Lazily probed on first use: tries
/// perf_event_open, degrades to the clock fallback when the syscall is
/// unavailable (ENOENT without a PMU, EACCES under perf_event_paranoid,
/// ENOSYS in seccomp'd containers). JRSND_PROF_BACKEND=perf|clock forces a
/// backend before the probe runs; set_prof_backend overrides at runtime.
[[nodiscard]] ProfBackend prof_backend();

/// Forces the backend (tests, benches). kPerfEvent is a *request* — it
/// re-probes and may still degrade to the fallback. Updates the
/// `prof.backend` gauge. Only affects PerfCounterSets created afterwards.
void set_prof_backend(ProfBackend backend);

/// Region-collection switch, default off (same contract as metrics_enabled:
/// one relaxed load per disabled site).
[[nodiscard]] bool prof_enabled() noexcept;
void set_prof_enabled(bool enabled);

/// Accumulated counter values over a measured interval. With the clock
/// fallback, `estimated` is true: cycles are derived from thread CPU time,
/// instructions/misses read 0 and must not be interpreted as "zero misses".
struct CounterTotals {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t task_clock_ns = 0;
  bool estimated = false;

  /// Instructions per cycle; 0 when either counter is unavailable.
  [[nodiscard]] double ipc() const noexcept;
  /// LLC misses per thousand instructions; 0 when unavailable.
  [[nodiscard]] double llc_misses_per_kinst() const noexcept;

  CounterTotals& operator+=(const CounterTotals& other) noexcept;
};

/// One thread's counter group. Construction opens the fds (or arms the clock
/// fallback); destruction closes them. Not thread-safe — use one per thread
/// (PerfRegion goes through a thread-local instance automatically).
class PerfCounterSet {
 public:
  PerfCounterSet();
  ~PerfCounterSet();

  PerfCounterSet(const PerfCounterSet&) = delete;
  PerfCounterSet& operator=(const PerfCounterSet&) = delete;

  /// The backend this set actually bound to (a kPerfEvent request can have
  /// degraded at construction).
  [[nodiscard]] ProfBackend backend() const noexcept { return backend_; }

  /// Snapshot of the monotonically increasing raw counters.
  [[nodiscard]] CounterTotals read() const noexcept;

  /// Convenience: read() deltas around a callable.
  template <typename Fn>
  CounterTotals measure(Fn&& fn) const {
    const CounterTotals before = read();
    fn();
    CounterTotals after = read();
    after.cycles -= before.cycles;
    after.instructions -= before.instructions;
    after.cache_misses -= before.cache_misses;
    after.branch_misses -= before.branch_misses;
    after.task_clock_ns -= before.task_clock_ns;
    return after;
  }

  /// This thread's lazily constructed set (what PerfRegion uses).
  [[nodiscard]] static PerfCounterSet& this_thread();

 private:
  ProfBackend backend_ = ProfBackend::kClockFallback;
  int fds_[5] = {-1, -1, -1, -1, -1};  // cycles, instr, cache, branch, task-clock
  double fallback_ghz_ = 1.0;
};

/// Pre-resolved `prof.<name>.*` handles for one region site, revalidated
/// against registry_generation() so scoped scratch registries are honored.
struct RegionMetrics {
  Counter* count = nullptr;
  Counter* cycles = nullptr;
  Counter* instructions = nullptr;
  Counter* cache_misses = nullptr;
  Counter* branch_misses = nullptr;
  Counter* task_clock_ns = nullptr;
  std::uint64_t generation = 0;  // 0 = never resolved
};

/// Resolves (or re-resolves) `cache` for region `name` against the active
/// registry. Allocates only on first resolution per (site, thread, registry
/// generation) — steady-state region exits are allocation-free.
void resolve_region_metrics(std::string_view name, RegionMetrics& cache);

/// RAII scoped counter region. Nests like Span; attribution is inclusive
/// (a nested region's cycles also count toward its enclosing regions).
/// Disarmed (single relaxed load, no syscalls) unless prof_enabled().
class PerfRegion {
 public:
  PerfRegion(const char* name, RegionMetrics& cache) noexcept;
  ~PerfRegion();

  PerfRegion(const PerfRegion&) = delete;
  PerfRegion& operator=(const PerfRegion&) = delete;

  [[nodiscard]] bool armed() const noexcept { return armed_; }

 private:
  const char* name_;
  RegionMetrics& cache_;
  CounterTotals start_{};
  bool armed_ = false;
};

}  // namespace jrsnd::obs::prof

/// Scoped counter region with a per-site thread-local handle cache. `name`
/// must be a string literal. Costs one relaxed load when profiling is off.
#define JRSND_PERF_REGION(name)                                                      \
  static thread_local ::jrsnd::obs::prof::RegionMetrics JRSND_OBS_CONCAT(            \
      jrsnd_prof_rm_, __LINE__);                                                     \
  ::jrsnd::obs::prof::PerfRegion JRSND_OBS_CONCAT(jrsnd_prof_region_, __LINE__) {    \
    name, JRSND_OBS_CONCAT(jrsnd_prof_rm_, __LINE__)                                 \
  }
