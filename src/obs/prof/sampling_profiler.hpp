// SIGPROF sampling profiler (docs/performance.md "Profiling").
//
// A process-CPU-time itimer delivers SIGPROF to whichever thread is burning
// cycles; the handler walks the frame-pointer chain from the interrupted
// context and appends the raw PC stack to that thread's fixed-capacity
// sample ring. The signal path is strictly async-signal-safe and ZERO
// ALLOCATION (the perf_alloc harness proves it): rings are preallocated at
// profiler_start, threads claim a preallocated slot with one fetch_add, and
// a sample is a plain array copy. Threads beyond `max_threads` are counted
// as missed, never blocked.
//
// Symbolization happens offline in dump_folded(): samples aggregate by
// identical stack, frames resolve through dladdr (link with ENABLE_EXPORTS /
// -rdynamic for names; unresolved frames print as hex), and each unique
// stack emits one root-first folded line — `main;run;scan 42` — ready for
// flamegraph tooling (inferno / flamegraph.pl).
//
// Build note: frame-pointer walking needs -fno-omit-frame-pointer, which the
// top-level CMakeLists applies (JRSND_PROF_FRAME_POINTERS, default ON).
// Without it the walk safely terminates early and stacks come out shallow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>

namespace jrsnd::obs::prof {

struct ProfilerOptions {
  /// Sample rate in Hz of *process CPU time* (ITIMER_PROF semantics: an
  /// idle process takes no samples). 199 beats lockstep with 100 Hz timers.
  std::uint32_t hz = 199;
  /// Samples retained per thread ring; older samples are overwritten.
  std::size_t ring_capacity = 8192;
  /// Preallocated thread slots; threads beyond this are counted missed.
  std::size_t max_threads = 16;
  /// Maximum frames captured per sample (deeper stacks are truncated).
  std::size_t max_depth = 32;
};

[[nodiscard]] bool profiler_running() noexcept;

/// Preallocates the sample rings, installs the SIGPROF handler, and arms the
/// itimer. Returns false if already running or the timer could not be armed.
/// Rings from a previous session are recycled (and their samples cleared).
bool profiler_start(const ProfilerOptions& options = {});

/// Disarms the timer. Samples stay available for dump_folded(). Idempotent.
void profiler_stop();

/// Samples captured / lost (ring overwrites + threads beyond max_threads)
/// since the last profiler_start.
[[nodiscard]] std::uint64_t profiler_samples() noexcept;
[[nodiscard]] std::uint64_t profiler_dropped() noexcept;

/// Aggregates the surviving samples into folded-stack lines
/// ("frame;frame;frame count\n", root first) and writes them to `os`.
/// Returns the number of distinct stacks written. Sampling is paused while
/// dumping; if the profiler was running it resumes afterwards.
std::size_t dump_folded(std::ostream& os);

/// Convenience: dump_folded into `path` (truncating). False on open failure.
bool dump_folded_file(const char* path);

}  // namespace jrsnd::obs::prof
