#include "obs/prof/perf_counters.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace jrsnd::obs::prof {

namespace {

std::atomic<bool> g_prof_enabled{false};
// 0 = unresolved; otherwise 1 + ProfBackend value so kOff is representable.
std::atomic<int> g_backend_request{0};

void publish_backend_gauge(ProfBackend backend) {
  // Direct registry write (not the macro): the gauge must reflect the live
  // backend even when general metrics collection is disabled.
  registry().gauge("prof.backend").set(static_cast<double>(backend));
}

double fallback_ghz_from_env() {
  if (const char* env = std::getenv("JRSND_PROF_GHZ")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 1.0;
}

#if defined(__linux__)
int open_counter(std::uint32_t type, std::uint64_t config) noexcept {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0UL));
}

std::uint64_t read_counter(int fd) noexcept {
  if (fd < 0) return 0;
  std::uint64_t value = 0;
  if (::read(fd, &value, sizeof(value)) != static_cast<ssize_t>(sizeof(value))) return 0;
  return value;
}
#endif

std::uint64_t thread_cpu_ns() noexcept {
  timespec ts{};
#if defined(CLOCK_THREAD_CPUTIME_ID)
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
#else
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0) return 0;
#endif
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// Probe once whether hardware counters open at all on this host.
bool perf_event_available() {
#if defined(__linux__)
  static const bool available = [] {
    const int fd = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return available;
#else
  return false;
#endif
}

ProfBackend resolve_backend() {
  const int requested = g_backend_request.load(std::memory_order_acquire);
  if (requested != 0) {
    const auto backend = static_cast<ProfBackend>(requested - 1);
    if (backend != ProfBackend::kPerfEvent) return backend;
    return perf_event_available() ? ProfBackend::kPerfEvent : ProfBackend::kClockFallback;
  }
  static const ProfBackend from_env = [] {
    if (const char* env = std::getenv("JRSND_PROF_BACKEND")) {
      if (std::strcmp(env, "off") == 0) return ProfBackend::kOff;
      if (std::strcmp(env, "clock") == 0) return ProfBackend::kClockFallback;
      // "perf" (and anything else) falls through to the probe below.
    }
    return perf_event_available() ? ProfBackend::kPerfEvent : ProfBackend::kClockFallback;
  }();
  return from_env;
}

}  // namespace

const char* backend_name(ProfBackend backend) noexcept {
  switch (backend) {
    case ProfBackend::kOff: return "off";
    case ProfBackend::kClockFallback: return "clock_fallback";
    case ProfBackend::kPerfEvent: return "perf_event";
  }
  return "?";
}

ProfBackend prof_backend() {
  const ProfBackend backend = resolve_backend();
  publish_backend_gauge(backend);
  return backend;
}

void set_prof_backend(ProfBackend backend) {
  g_backend_request.store(1 + static_cast<int>(backend), std::memory_order_release);
  publish_backend_gauge(resolve_backend());
}

bool prof_enabled() noexcept { return g_prof_enabled.load(std::memory_order_relaxed); }

void set_prof_enabled(bool enabled) {
  g_prof_enabled.store(enabled, std::memory_order_relaxed);
  if (enabled) (void)prof_backend();  // resolve + publish the gauge up front
}

double CounterTotals::ipc() const noexcept {
  if (estimated || cycles == 0 || instructions == 0) return 0.0;
  return static_cast<double>(instructions) / static_cast<double>(cycles);
}

double CounterTotals::llc_misses_per_kinst() const noexcept {
  if (estimated || instructions == 0) return 0.0;
  return 1000.0 * static_cast<double>(cache_misses) / static_cast<double>(instructions);
}

CounterTotals& CounterTotals::operator+=(const CounterTotals& other) noexcept {
  cycles += other.cycles;
  instructions += other.instructions;
  cache_misses += other.cache_misses;
  branch_misses += other.branch_misses;
  task_clock_ns += other.task_clock_ns;
  estimated = estimated || other.estimated;
  return *this;
}

PerfCounterSet::PerfCounterSet() : fallback_ghz_(fallback_ghz_from_env()) {
  backend_ = resolve_backend();
#if defined(__linux__)
  if (backend_ == ProfBackend::kPerfEvent) {
    // Open each counter independently so a host that lacks (say) LLC-miss
    // events still measures cycles. The leader failing demotes the set.
    static constexpr struct {
      std::uint32_t type;
      std::uint64_t config;
    } kEvents[5] = {
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
        {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    };
    for (int i = 0; i < 5; ++i) fds_[i] = open_counter(kEvents[i].type, kEvents[i].config);
    if (fds_[0] < 0) {
      for (int& fd : fds_) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
      backend_ = ProfBackend::kClockFallback;
    }
  }
#else
  if (backend_ == ProfBackend::kPerfEvent) backend_ = ProfBackend::kClockFallback;
#endif
}

PerfCounterSet::~PerfCounterSet() {
#if defined(__linux__)
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
#endif
}

CounterTotals PerfCounterSet::read() const noexcept {
  CounterTotals totals;
  switch (backend_) {
    case ProfBackend::kOff:
      return totals;
    case ProfBackend::kPerfEvent:
#if defined(__linux__)
      totals.cycles = read_counter(fds_[0]);
      totals.instructions = read_counter(fds_[1]);
      totals.cache_misses = read_counter(fds_[2]);
      totals.branch_misses = read_counter(fds_[3]);
      totals.task_clock_ns = read_counter(fds_[4]);
#endif
      return totals;
    case ProfBackend::kClockFallback: {
      const std::uint64_t ns = thread_cpu_ns();
      totals.task_clock_ns = ns;
      totals.cycles = static_cast<std::uint64_t>(static_cast<double>(ns) * fallback_ghz_);
      totals.estimated = true;
      return totals;
    }
  }
  return totals;
}

PerfCounterSet& PerfCounterSet::this_thread() {
  // Heap-allocated and leaked on thread exit is unnecessary: thread_local
  // destruction closes the fds in an orderly way, and no other thread ever
  // touches this set.
  static thread_local PerfCounterSet set;
  return set;
}

void resolve_region_metrics(std::string_view name, RegionMetrics& cache) {
  const std::uint64_t now = registry_generation();
  if (cache.generation == now) return;
  MetricsRegistry& reg = active_registry();
  std::string base("prof.");
  base += name;
  const std::size_t stem = base.size();
  const auto resolve = [&](const char* suffix) -> Counter* {
    base.resize(stem);
    base += suffix;
    return &reg.counter(base);
  };
  cache.count = resolve(".count");
  cache.cycles = resolve(".cycles");
  cache.instructions = resolve(".instructions");
  cache.cache_misses = resolve(".cache_misses");
  cache.branch_misses = resolve(".branch_misses");
  cache.task_clock_ns = resolve(".task_clock_ns");
  cache.generation = now;
}

PerfRegion::PerfRegion(const char* name, RegionMetrics& cache) noexcept
    : name_(name), cache_(cache) {
  if (!prof_enabled()) return;
  const PerfCounterSet& set = PerfCounterSet::this_thread();
  if (set.backend() == ProfBackend::kOff) return;
  armed_ = true;
  start_ = set.read();
}

PerfRegion::~PerfRegion() {
  if (!armed_) return;
  const CounterTotals end = PerfCounterSet::this_thread().read();
  resolve_region_metrics(name_, cache_);
  cache_.count->inc(1);
  cache_.cycles->inc(end.cycles - start_.cycles);
  cache_.instructions->inc(end.instructions - start_.instructions);
  cache_.cache_misses->inc(end.cache_misses - start_.cache_misses);
  cache_.branch_misses->inc(end.branch_misses - start_.branch_misses);
  cache_.task_clock_ns->inc(end.task_clock_ns - start_.task_clock_ns);
}

}  // namespace jrsnd::obs::prof
