#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "obs/sinks.hpp"  // json_escape

namespace jrsnd::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

// Generation 0 is reserved as the macros' "never resolved" sentinel.
std::atomic<std::uint64_t> g_registry_generation{1};
thread_local MetricsRegistry* t_registry_override = nullptr;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// CAS update keeping the extremum; `first` seeds an empty slot (NaN).
template <typename Cmp>
void update_extremum(std::atomic<double>& slot, double v, Cmp better) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (std::isnan(cur) || better(v, cur)) {
    if (slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) return;
  }
}

}  // namespace

bool metrics_enabled() noexcept { return g_metrics_enabled.load(std::memory_order_relaxed); }

void set_metrics_enabled(bool enabled) noexcept {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void Gauge::update_max(double v) noexcept {
  double cur = value_.load(std::memory_order_relaxed);
  while (v > cur) {
    if (value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) return;
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1), min_(kNaN), max_(kNaN) {
  // Edges must be strictly ascending for bucket search and quantiles.
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  update_extremum(min_, v, [](double a, double b) { return a < b; });
  update_extremum(max_, v, [](double a, double b) { return a > b; });
}

double Histogram::min() const noexcept { return min_.load(std::memory_order_relaxed); }

double Histogram::max() const noexcept { return max_.load(std::memory_order_relaxed); }

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  // Delegate to the snapshot implementation so live and snapshot percentiles
  // can never disagree on interpolation.
  HistogramSample sample;
  sample.bounds = bounds_;
  sample.buckets = bucket_counts();
  sample.count = count();
  sample.sum = sum();
  sample.min = min();
  sample.max = max();
  return sample.quantile(q);
}

void Histogram::merge_from(const HistogramSample& sample) noexcept {
  if (sample.count == 0) return;
  if (sample.bounds != bounds_ || sample.buckets.size() != buckets_.size()) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(sample.buckets[i], std::memory_order_relaxed);
  }
  count_.fetch_add(sample.count, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + sample.sum, std::memory_order_relaxed)) {
  }
  if (!std::isnan(sample.min)) {
    update_extremum(min_, sample.min, [](double a, double b) { return a < b; });
  }
  if (!std::isnan(sample.max)) {
    update_extremum(max_, sample.max, [](double a, double b) { return a > b; });
  }
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kNaN, std::memory_order_relaxed);
  max_.store(kNaN, std::memory_order_relaxed);
}

const std::vector<double>& default_latency_bounds() {
  // 1us .. 30s, roughly 1-3-10 per decade.
  static const std::vector<double> bounds = {
      1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
      1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,  10.0, 30.0};
  return bounds;
}

double HistogramSample::mean() const noexcept {
  return count == 0 ? kNaN : sum / static_cast<double>(count);
}

double HistogramSample::quantile(double q) const noexcept {
  if (count == 0) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      // Interpolate inside the bucket; the open-ended overflow bucket and
      // the first bucket fall back to the observed extremes.
      const double hi = i < bounds.size() ? bounds[i] : max;
      const double lo = i == 0 ? std::min(min, hi) : bounds[i - 1];
      const double frac =
          in_bucket == 0 ? 1.0
                         : (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return max;
}

bool MetricsSnapshot::empty() const noexcept {
  return counters.empty() && gauges.empty() && histograms.empty();
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  const auto find_by_name = [](auto& vec, const std::string& name) {
    return std::find_if(vec.begin(), vec.end(),
                        [&](const auto& s) { return s.name == name; });
  };
  for (const CounterSample& c : other.counters) {
    auto it = find_by_name(counters, c.name);
    if (it == counters.end()) {
      counters.push_back(c);
    } else {
      it->value += c.value;
    }
  }
  for (const GaugeSample& g : other.gauges) {
    auto it = find_by_name(gauges, g.name);
    if (it == gauges.end()) {
      gauges.push_back(g);
    } else {
      it->value = std::max(it->value, g.value);
    }
  }
  for (const HistogramSample& h : other.histograms) {
    auto it = find_by_name(histograms, h.name);
    if (it == histograms.end() || it->bounds != h.bounds) {
      histograms.push_back(h);
      continue;
    }
    for (std::size_t i = 0; i < it->buckets.size() && i < h.buckets.size(); ++i) {
      it->buckets[i] += h.buckets[i];
    }
    it->count += h.count;
    it->sum += h.sum;
    if (std::isnan(it->min) || h.min < it->min) it->min = h.min;
    if (std::isnan(it->max) || h.max > it->max) it->max = h.max;
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(counters.begin(), counters.end(), by_name);
  std::sort(gauges.begin(), gauges.end(), by_name);
  std::sort(histograms.begin(), histograms.end(), by_name);
}

namespace {

void print_number(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "-";
  } else {
    os << std::fixed << std::setprecision(6) << v;
  }
}

}  // namespace

void MetricsSnapshot::print_table(std::ostream& os) const {
  std::size_t width = 24;
  for (const auto& c : counters) width = std::max(width, c.name.size());
  for (const auto& g : gauges) width = std::max(width, g.name.size());
  for (const auto& h : histograms) width = std::max(width, h.name.size());

  if (!counters.empty()) {
    os << "counters:\n";
    for (const CounterSample& c : counters) {
      os << "  " << std::left << std::setw(static_cast<int>(width)) << c.name << "  "
         << c.value << "\n";
    }
  }
  if (!gauges.empty()) {
    os << "gauges:\n";
    for (const GaugeSample& g : gauges) {
      os << "  " << std::left << std::setw(static_cast<int>(width)) << g.name << "  ";
      print_number(os, g.value);
      os << "\n";
    }
  }
  if (!histograms.empty()) {
    os << "histograms:" << std::left << std::setw(static_cast<int>(width) - 9) << ""
       << "  count        mean         p50          p95          p99          max\n";
    for (const HistogramSample& h : histograms) {
      os << "  " << std::left << std::setw(static_cast<int>(width)) << h.name << "  "
         << std::setw(11) << h.count << "  ";
      print_number(os, h.mean());
      os << "  ";
      print_number(os, h.p50());
      os << "  ";
      print_number(os, h.p95());
      os << "  ";
      print_number(os, h.p99());
      os << "  ";
      print_number(os, h.max);
      os << "\n";
    }
  }
  if (empty()) os << "(no metrics recorded)\n";
}

namespace {

void write_json_number(std::ostream& os, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    os << "null";  // JSON has no NaN
  } else {
    os << v;
  }
}

}  // namespace

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(counters[i].name) << "\":" << counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << json_escape(gauges[i].name) << "\":";
    write_json_number(os, gauges[i].value);
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    if (i > 0) os << ",";
    os << "\"" << json_escape(h.name) << "\":{\"count\":" << h.count << ",\"sum\":";
    write_json_number(os, h.sum);
    os << ",\"min\":";
    write_json_number(os, h.min);
    os << ",\"max\":";
    write_json_number(os, h.max);
    os << ",\"bounds\":[";
    for (std::size_t j = 0; j < h.bounds.size(); ++j) {
      if (j > 0) os << ",";
      write_json_number(os, h.bounds[j]);
    }
    os << "],\"buckets\":[";
    for (std::size_t j = 0; j < h.buckets.size(); ++j) {
      if (j > 0) os << ",";
      os << h.buckets[j];
    }
    os << "]}";
  }
  os << "}}";
}

namespace {

/// A name registered under two metric kinds would silently split one logical
/// metric across snapshot sections; refuse with both kinds named.
[[noreturn]] void throw_kind_collision(std::string_view name, const char* requested,
                                       const char* existing) {
  throw std::logic_error("metric name '" + std::string(name) + "' requested as " + requested +
                         " but already registered as a " + existing);
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    if (gauges_.find(name) != gauges_.end()) throw_kind_collision(name, "counter", "gauge");
    if (histograms_.find(name) != histograms_.end()) {
      throw_kind_collision(name, "counter", "histogram");
    }
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    if (counters_.find(name) != counters_.end()) throw_kind_collision(name, "gauge", "counter");
    if (histograms_.find(name) != histograms_.end()) {
      throw_kind_collision(name, "gauge", "histogram");
    }
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::span<const double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (counters_.find(name) != counters_.end()) {
      throw_kind_collision(name, "histogram", "counter");
    }
    if (gauges_.find(name) != gauges_.end()) throw_kind_collision(name, "histogram", "gauge");
    std::vector<double> edges(bounds.begin(), bounds.end());
    if (edges.empty()) edges = default_latency_bounds();
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(edges)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.bounds = h->bounds();
    s.buckets = h->bucket_counts();
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    snap.histograms.push_back(std::move(s));
  }
  return snap;  // maps iterate sorted, so samples are name-sorted already
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::absorb(const MetricsSnapshot& snapshot) {
  for (const CounterSample& c : snapshot.counters) counter(c.name).inc(c.value);
  for (const GaugeSample& g : snapshot.gauges) gauge(g.name).update_max(g.value);
  for (const HistogramSample& h : snapshot.histograms) {
    histogram(h.name, h.bounds).merge_from(h);
  }
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

MetricsRegistry& active_registry() {
  return t_registry_override != nullptr ? *t_registry_override : registry();
}

std::uint64_t registry_generation() noexcept {
  return g_registry_generation.load(std::memory_order_relaxed);
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry* scratch)
    : previous_(t_registry_override), installed_(scratch != nullptr) {
  if (installed_) {
    t_registry_override = scratch;
    g_registry_generation.fetch_add(1, std::memory_order_relaxed);
  }
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() {
  if (installed_) {
    t_registry_override = previous_;
    g_registry_generation.fetch_add(1, std::memory_order_relaxed);
  }
}

void preregister_core_metrics() {
  MetricsRegistry& r = registry();
  for (const char* name : {
           "dndp.runs", "dndp.discovered", "dndp.failed", "dndp.no_shared_code",
           "dndp.hellos_delivered", "dndp.subsessions.started",
           "dndp.subsessions.completed", "dndp.subsessions.failed", "dndp.mac_failures",
           "mndp.initiations", "mndp.requests_sent", "mndp.responses_sent",
           "mndp.sig_verifications", "mndp.sigs_created", "mndp.requests_dropped",
           "mndp.discoveries", "mndp.false_positive_responses",
           "dndp.retx.attempts", "dndp.retx.recovered",
           "dndp.timeout.expired", "dndp.timeout.exhausted",
           "mndp.retx.attempts", "mndp.retx.recovered",
           "mndp.timeout.expired", "mndp.timeout.exhausted",
           "fault.injected.drop", "fault.injected.duplicate",
           "fault.injected.reorder", "fault.injected.corrupt",
           "fault.injected.truncate", "fault.injected.crash_blocked",
           "dsss.sync.scans", "dsss.sync.hits", "dsss.sync.misses",
           "dsss.sync.windows_below_tau", "dsss.correlator.profile_evals",
           "dsss.correlator.cross_evals",
           "ecc.rs.encode.calls", "ecc.rs.decode.calls", "ecc.rs.decode.ok",
           "ecc.rs.decode.fail", "ecc.rs.decode.erasures", "ecc.rs.decode.errors_corrected",
           "phy.tx.total", "phy.tx.delivered", "phy.tx.jammed", "phy.tx.out_of_range",
           "sim.events.processed",
           "obs.span.started", "obs.span.ended",
           "obs.flight.records", "obs.flight.dumps",
           "export.heartbeats",
       }) {
    (void)r.counter(name);
  }
  (void)r.gauge("sim.queue.depth.highwater");
  (void)r.gauge("sim.runs.completed");
  (void)r.gauge("sim.runs.total");
  for (const char* name : {"sim.phase.world.seconds", "sim.phase.dndp.seconds",
                           "sim.phase.mndp.seconds", "sim.phase.rates.seconds",
                           "sim.phase.run.seconds"}) {
    (void)r.histogram(name);
  }
}

}  // namespace jrsnd::obs
