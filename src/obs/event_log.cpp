#include "obs/event_log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>

namespace jrsnd::obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

thread_local double t_sim_time = 0.0;
thread_local bool t_sim_time_active = false;

}  // namespace

const char* severity_name(Severity sev) noexcept {
  switch (sev) {
    case Severity::Debug: return "debug";
    case Severity::Info: return "info";
    case Severity::Warn: return "warn";
    case Severity::Error: return "error";
  }
  return "?";
}

std::optional<Severity> parse_severity(std::string_view name) noexcept {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return Severity::Debug;
  if (lower == "info") return Severity::Info;
  if (lower == "warn" || lower == "warning") return Severity::Warn;
  if (lower == "error") return Severity::Error;
  return std::nullopt;
}

const FieldValue* TraceEvent::field(std::string_view key) const noexcept {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool tracing_enabled() noexcept { return g_tracing_enabled.load(std::memory_order_relaxed); }

void set_tracing_enabled(bool enabled) noexcept {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

EventLog::EventLog(std::size_t ring_capacity) : ring_capacity_(ring_capacity) {}

void EventLog::attach(std::shared_ptr<EventSink> sink) {
  if (sink == nullptr) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  sinks_.push_back(std::move(sink));
}

void EventLog::detach_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& sink : sinks_) sink->flush();
  sinks_.clear();
}

void EventLog::set_sim_time(double t) noexcept {
  sim_time_.store(t, std::memory_order_relaxed);
}

double EventLog::sim_time() const noexcept { return sim_time_.load(std::memory_order_relaxed); }

void EventLog::emit(TraceEvent event) {
  // An *active* thread-local override wins even when its value is 0.0 (run
  // index 0 is a legitimate time); only threads with no override fall back
  // to the process-wide clock, which may hold a stale value from an earlier
  // serial sweep.
  const bool overridden = event.t == 0.0 && t_sim_time_active;
  if (overridden) event.t = t_sim_time;
  const std::lock_guard<std::mutex> lock(mutex_);
  event.seq = next_seq_++;
  if (event.t == 0.0 && !overridden) event.t = sim_time_.load(std::memory_order_relaxed);
  for (const auto& sink : sinks_) sink->write(event);
  if (ring_capacity_ == 0) return;
  if (ring_.size() == ring_capacity_) ring_.pop_front();
  ring_.push_back(std::move(event));
}

void EventLog::set_ring_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_capacity_ = capacity;
  while (ring_.size() > ring_capacity_) ring_.pop_front();
}

std::vector<TraceEvent> EventLog::recent() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<TraceEvent>(ring_.begin(), ring_.end());
}

std::uint64_t EventLog::emitted() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - 1;
}

void EventLog::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& sink : sinks_) sink->flush();
}

void EventLog::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
}

EventLog& event_log() {
  static EventLog instance;
  return instance;
}

ScopedSimTime::ScopedSimTime(double t) noexcept
    : saved_t_(t_sim_time), saved_active_(t_sim_time_active) {
  t_sim_time = t;
  t_sim_time_active = true;
}

ScopedSimTime::~ScopedSimTime() {
  t_sim_time = saved_t_;
  t_sim_time_active = saved_active_;
}

double current_sim_time() noexcept {
  return t_sim_time_active ? t_sim_time : event_log().sim_time();
}

}  // namespace jrsnd::obs
