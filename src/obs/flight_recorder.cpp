#include "obs/flight_recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/sinks.hpp"

namespace jrsnd::obs {

namespace {

std::atomic<bool> g_flight_enabled{true};
std::atomic<std::size_t> g_capacity_override{0};

// Wall clock origin: first call wins; steady_clock so time never jumps.
std::chrono::steady_clock::time_point process_start() noexcept {
  static const std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  return t0;
}

/// One thread's ring. Lives forever in the global intrusive list below;
/// `in_use` flips false when the owning thread exits so a later thread can
/// adopt it (bounding memory across repeated thread-pool churn) while its
/// records stay dumpable.
struct Ring {
  explicit Ring(std::size_t cap) : capacity(cap), records(cap) {}

  void lock() noexcept {
    while (spin.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() noexcept { spin.clear(std::memory_order_release); }

  Ring* next = nullptr;  // immutable after publication
  std::atomic<bool> in_use{false};
  std::atomic_flag spin = ATOMIC_FLAG_INIT;
  std::uint64_t pushed = 0;  // guarded by spin
  const std::size_t capacity;
  std::vector<FlightRecord> records;  // guarded by spin
};

std::atomic<Ring*> g_rings{nullptr};

Ring* acquire_ring() {
  const std::size_t want = flight_capacity();
  for (Ring* r = g_rings.load(std::memory_order_acquire); r != nullptr; r = r->next) {
    bool free = false;
    if (r->capacity == want &&
        r->in_use.compare_exchange_strong(free, true, std::memory_order_acq_rel)) {
      return r;
    }
  }
  Ring* r = new Ring(want);  // intentionally never freed: reachable from g_rings
  r->in_use.store(true, std::memory_order_relaxed);
  r->next = g_rings.load(std::memory_order_relaxed);
  while (!g_rings.compare_exchange_weak(r->next, r, std::memory_order_acq_rel)) {
  }
  return r;
}

thread_local Ring* t_ring = nullptr;

struct RingRelease {
  ~RingRelease() {
    if (t_ring != nullptr) {
      t_ring->in_use.store(false, std::memory_order_release);
      t_ring = nullptr;
    }
  }
};
thread_local RingRelease t_ring_release;

Ring& this_thread_ring() {
  if (t_ring == nullptr) {
    t_ring = acquire_ring();
    (void)t_ring_release;  // odr-use so the releaser is constructed
  }
  return *t_ring;
}

std::mutex g_dump_path_mutex;
std::string g_dump_path;

/// Copy of every ring's surviving records, oldest first within each ring.
std::vector<FlightRecord> collect_records() {
  std::vector<FlightRecord> out;
  for (Ring* r = g_rings.load(std::memory_order_acquire); r != nullptr; r = r->next) {
    r->lock();
    const std::uint64_t live = std::min<std::uint64_t>(r->pushed, r->capacity);
    for (std::uint64_t i = 0; i < live; ++i) {
      out.push_back(r->records[(r->pushed - live + i) % r->capacity]);
    }
    r->unlock();
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightRecord& a, const FlightRecord& b) { return a.t_wall < b.t_wall; });
  return out;
}

}  // namespace

const char* flight_kind_name(FlightKind kind) noexcept {
  switch (kind) {
    case FlightKind::SpanBegin: return "begin";
    case FlightKind::SpanEnd: return "end";
    case FlightKind::Note: return "note";
  }
  return "?";
}

bool flight_enabled() noexcept { return g_flight_enabled.load(std::memory_order_relaxed); }

void set_flight_enabled(bool enabled) noexcept {
  g_flight_enabled.store(enabled, std::memory_order_relaxed);
}

std::size_t flight_capacity() noexcept {
  if (const std::size_t cap = g_capacity_override.load(std::memory_order_relaxed); cap != 0) {
    return cap;
  }
  static const std::size_t from_env = [] {
    if (const char* env = std::getenv("JRSND_FLIGHT_CAPACITY")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return static_cast<std::size_t>(256);
  }();
  return from_env;
}

void set_flight_capacity(std::size_t records) noexcept {
  g_capacity_override.store(records, std::memory_order_relaxed);
}

void flight_record(const FlightRecord& record) noexcept {
  if (!flight_enabled()) return;
  Ring& ring = this_thread_ring();
  ring.lock();
  ring.records[ring.pushed % ring.capacity] = record;
  ++ring.pushed;
  ring.unlock();
  JRSND_COUNT("obs.flight.records");
}

void flight_note(const char* name, std::uint64_t arg) noexcept {
  if (!flight_enabled()) return;
  const SpanContext ctx = current_span();
  FlightRecord rec;
  rec.t_wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - process_start())
                   .count();
  rec.t_sim = current_sim_time();
  rec.trace_id = ctx.trace_id;
  rec.span_id = ctx.span_id;
  rec.parent_id = ctx.parent_id;
  rec.name = name;
  rec.arg = arg;
  rec.kind = FlightKind::Note;
  flight_record(rec);
}

std::uint64_t flight_records_pushed() {
  std::uint64_t total = 0;
  for (Ring* r = g_rings.load(std::memory_order_acquire); r != nullptr; r = r->next) {
    r->lock();
    total += r->pushed;
    r->unlock();
  }
  return total;
}

std::uint64_t flight_records_dropped() {
  std::uint64_t dropped = 0;
  for (Ring* r = g_rings.load(std::memory_order_acquire); r != nullptr; r = r->next) {
    r->lock();
    if (r->pushed > r->capacity) dropped += r->pushed - r->capacity;
    r->unlock();
  }
  return dropped;
}

void flight_reset() {
  for (Ring* r = g_rings.load(std::memory_order_acquire); r != nullptr; r = r->next) {
    r->lock();
    r->pushed = 0;
    r->unlock();
  }
}

std::size_t dump_flight(std::ostream& os) {
  const std::vector<FlightRecord> records = collect_records();
  std::uint64_t seq = 0;
  for (const FlightRecord& rec : records) {
    TraceEvent ev(std::string("flight.") + flight_kind_name(rec.kind),
                  rec.ok ? Severity::Info : Severity::Warn);
    ev.t = rec.t_sim;
    ev.seq = ++seq;
    ev.with("wall_s", rec.t_wall)
        .with("name", std::string(rec.name != nullptr ? rec.name : "?"))
        .with("trace", rec.trace_id)
        .with("span", static_cast<std::uint64_t>(rec.span_id))
        .with("parent", static_cast<std::uint64_t>(rec.parent_id));
    if (rec.kind == FlightKind::SpanEnd) ev.with("ok", rec.ok);
    if (rec.loss != LossStage::None) ev.with("loss", std::string(loss_stage_name(rec.loss)));
    if (rec.kind == FlightKind::Note && rec.arg != 0) ev.with("arg", rec.arg);
    write_jsonl(os, ev);
  }
  JRSND_COUNT("obs.flight.dumps");
  return records.size();
}

void set_flight_dump_path(std::string path) {
  const std::lock_guard<std::mutex> lock(g_dump_path_mutex);
  g_dump_path = std::move(path);
}

std::string flight_dump_path() {
  const std::lock_guard<std::mutex> lock(g_dump_path_mutex);
  return g_dump_path;
}

bool dump_flight_now() {
  const std::string path = flight_dump_path();
  if (path.empty()) return false;
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  dump_flight(out);
  return static_cast<bool>(out);
}

void flight_on_crash_event() {
  flight_note("fault.crash_window", 1);
  (void)dump_flight_now();
}

namespace {

// --- async-signal-safe dumper ----------------------------------------------
//
// Only snprintf into a stack buffer + write(2); walks the ring list without
// taking spinlocks (a crashed thread may hold one) — records are PODs, so a
// torn read at worst garbles the line being overwritten at crash time.

void write_all(int fd, const char* buf, std::size_t len) noexcept {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, buf + off, len - off);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

void dump_flight_fd(int fd) {
  char buf[512];
  for (Ring* r = g_rings.load(std::memory_order_acquire); r != nullptr; r = r->next) {
    const std::uint64_t pushed = r->pushed;
    const std::uint64_t live = std::min<std::uint64_t>(pushed, r->capacity);
    for (std::uint64_t i = 0; i < live; ++i) {
      const FlightRecord& rec = r->records[(pushed - live + i) % r->capacity];
      const int n = std::snprintf(
          buf, sizeof(buf),
          "{\"t\":%.6f,\"seq\":%llu,\"sev\":\"%s\",\"event\":\"flight.%s\",\"wall_s\":%.6f,"
          "\"name\":\"%s\",\"trace\":%llu,\"span\":%u,\"parent\":%u,\"ok\":%s,\"loss\":\"%s\"}\n",
          rec.t_sim, static_cast<unsigned long long>(i + 1),
          rec.ok ? "info" : "warn", flight_kind_name(rec.kind), rec.t_wall,
          rec.name != nullptr ? rec.name : "?",
          static_cast<unsigned long long>(rec.trace_id), rec.span_id, rec.parent_id,
          rec.ok ? "true" : "false", loss_stage_name(rec.loss));
      if (n > 0) write_all(fd, buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
    }
  }
}

namespace {

char g_crash_path[512] = {0};
std::atomic<bool> g_handler_installed{false};
std::terminate_handler g_prev_terminate = nullptr;

void dump_to_crash_path() noexcept {
  if (g_crash_path[0] == '\0') return;
  const int fd = ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  dump_flight_fd(fd);
  ::close(fd);
}

void crash_signal_handler(int sig) {
  dump_to_crash_path();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

[[noreturn]] void terminate_with_dump() {
  dump_to_crash_path();
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

void install_flight_crash_handler(std::string path) {
  std::snprintf(g_crash_path, sizeof(g_crash_path), "%s", path.c_str());
  bool expected = false;
  if (!g_handler_installed.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
    return;  // already installed; only the path was refreshed above
  }
  std::signal(SIGSEGV, crash_signal_handler);
  std::signal(SIGABRT, crash_signal_handler);
  std::signal(SIGBUS, crash_signal_handler);
  g_prev_terminate = std::set_terminate(terminate_with_dump);
}

}  // namespace jrsnd::obs
