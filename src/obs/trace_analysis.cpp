#include "obs/trace_analysis.hpp"

#include <algorithm>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <tuple>

#include "obs/sinks.hpp"

namespace jrsnd::obs {

namespace {

bool field_u64(const TraceEvent& ev, std::string_view key, std::uint64_t& out) {
  const FieldValue* v = ev.field(key);
  if (v == nullptr) return false;
  if (const auto* u = std::get_if<std::uint64_t>(v)) {
    out = *u;
    return true;
  }
  if (const auto* i = std::get_if<std::int64_t>(v); i != nullptr && *i >= 0) {
    out = static_cast<std::uint64_t>(*i);
    return true;
  }
  if (const auto* d = std::get_if<double>(v); d != nullptr && *d >= 0) {
    out = static_cast<std::uint64_t>(*d);
    return true;
  }
  return false;
}

bool field_double(const TraceEvent& ev, std::string_view key, double& out) {
  const FieldValue* v = ev.field(key);
  if (v == nullptr) return false;
  if (const auto* d = std::get_if<double>(v)) {
    out = *d;
    return true;
  }
  if (const auto* u = std::get_if<std::uint64_t>(v)) {
    out = static_cast<double>(*u);
    return true;
  }
  if (const auto* i = std::get_if<std::int64_t>(v)) {
    out = static_cast<double>(*i);
    return true;
  }
  return false;
}

LossStage parse_loss(const TraceEvent& ev) {
  const FieldValue* v = ev.field("loss");
  if (v == nullptr) return LossStage::None;
  const auto* s = std::get_if<std::string>(v);
  if (s == nullptr) return LossStage::None;
  for (std::uint8_t i = 0; i < kLossStageCount; ++i) {
    const auto stage = static_cast<LossStage>(i);
    if (*s == loss_stage_name(stage)) return stage;
  }
  return LossStage::None;
}

}  // namespace

bool read_trace_jsonl(std::istream& is, std::vector<TraceEvent>& out, TraceReadError* error) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::optional<TraceEvent> ev = parse_jsonl_line(line);
    if (!ev.has_value()) {
      if (error != nullptr) {
        error->line = line_no;
        error->message = "malformed JSONL trace line";
      }
      return false;
    }
    out.push_back(std::move(*ev));
  }
  return true;
}

void normalize_trace(std::vector<TraceEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.t < b.t; });
  std::uint64_t seq = 0;
  for (TraceEvent& ev : events) ev.seq = ++seq;
}

TraceAnalysis analyze_trace(const std::vector<TraceEvent>& events) {
  TraceAnalysis analysis;
  analysis.events = events.size();

  // Open begins keyed by (trace, span, t): span ids restart per trace, and
  // detached spans all share trace 0, so the run index disambiguates.
  using SpanKey = std::tuple<std::uint64_t, std::uint32_t, double>;
  std::map<SpanKey, SpanRecord> open;
  std::map<std::uint64_t, std::size_t> spans_per_trace;

  for (const TraceEvent& ev : events) {
    if (ev.name != "span.begin" && ev.name != "span.end") continue;
    ++analysis.span_events;
    std::uint64_t trace = 0;
    std::uint64_t span = 0;
    std::uint64_t parent = 0;
    (void)field_u64(ev, "trace", trace);
    (void)field_u64(ev, "span", span);
    (void)field_u64(ev, "parent", parent);
    const SpanKey key{trace, static_cast<std::uint32_t>(span), ev.t};

    if (ev.name == "span.begin") {
      SpanRecord rec;
      rec.trace_id = trace;
      rec.span_id = static_cast<std::uint32_t>(span);
      rec.parent_id = static_cast<std::uint32_t>(parent);
      rec.t = ev.t;
      if (const FieldValue* n = ev.field("name")) {
        if (const auto* s = std::get_if<std::string>(n)) rec.name = *s;
      }
      // A begin already open under this key means its end never made it
      // (crash, truncation); count the older one as unmatched.
      if (!open.emplace(key, std::move(rec)).second) ++analysis.unmatched_begin;
      continue;
    }

    const auto it = open.find(key);
    if (it == open.end()) {
      ++analysis.unmatched_end;
      continue;
    }
    SpanRecord rec = std::move(it->second);
    open.erase(it);
    if (const FieldValue* okv = ev.field("ok")) {
      if (const auto* b = std::get_if<bool>(okv)) rec.ok = *b;
    }
    rec.loss = parse_loss(ev);
    rec.has_dur = field_double(ev, "dur", rec.dur);
    rec.has_wall = field_double(ev, "wall_us", rec.wall_us);
    if (rec.name.empty()) {
      if (const FieldValue* n = ev.field("name")) {
        if (const auto* s = std::get_if<std::string>(n)) rec.name = *s;
      }
    }

    StageStats& stage = analysis.stages[rec.name];
    ++stage.count;
    if (!rec.ok) ++stage.failed;
    if (rec.has_dur) {
      stage.total_dur += rec.dur;
      stage.max_dur = std::max(stage.max_dur, rec.dur);
    }
    ++spans_per_trace[rec.trace_id];

    if (rec.parent_id == 0 && rec.trace_id != 0) {
      AttemptSummary attempt;
      attempt.trace_id = rec.trace_id;
      attempt.name = rec.name;
      attempt.t = rec.t;
      attempt.ok = rec.ok;
      attempt.loss = rec.loss;
      attempt.dur = rec.dur;
      attempt.wall_us = rec.wall_us;
      attempt.has_wall = rec.has_wall;
      analysis.attempts.push_back(std::move(attempt));
      if (!rec.ok) {
        ++analysis.failed_attempts;
        if (rec.loss == LossStage::None) {
          ++analysis.unattributed_failures;
        } else {
          ++analysis.loss_counts[static_cast<std::uint8_t>(rec.loss)];
        }
      }
    }
    analysis.spans.push_back(std::move(rec));
  }

  analysis.unmatched_begin += open.size();
  for (AttemptSummary& attempt : analysis.attempts) {
    const auto it = spans_per_trace.find(attempt.trace_id);
    attempt.spans = it != spans_per_trace.end() ? it->second : 0;
  }
  return analysis;
}

void print_analysis(std::ostream& os, const TraceAnalysis& analysis, std::size_t top_k) {
  os << "trace: " << analysis.events << " events, " << analysis.span_events
     << " span records, " << analysis.spans.size() << " spans closed\n";
  os << "attempts: " << analysis.attempts.size() << " total, "
     << analysis.attempts.size() - analysis.failed_attempts << " ok, "
     << analysis.failed_attempts << " failed";
  if (analysis.unmatched_begin > 0 || analysis.unmatched_end > 0) {
    os << " (" << analysis.unmatched_begin << " unmatched begin, " << analysis.unmatched_end
       << " unmatched end)";
  }
  os << "\n";

  if (analysis.failed_attempts > 0) {
    os << "\nloss attribution (" << analysis.failed_attempts << " failed attempts):\n";
    for (std::uint8_t i = 1; i < kLossStageCount; ++i) {
      const std::uint64_t n = analysis.loss_counts[i];
      if (n == 0) continue;
      const double pct =
          100.0 * static_cast<double>(n) / static_cast<double>(analysis.failed_attempts);
      os << "  " << std::left << std::setw(16) << loss_stage_name(static_cast<LossStage>(i))
         << std::right << std::setw(8) << n << "  " << std::fixed << std::setprecision(1)
         << std::setw(5) << pct << "%\n";
    }
    if (analysis.unattributed_failures > 0) {
      os << "  " << std::left << std::setw(16) << "UNATTRIBUTED" << std::right << std::setw(8)
         << analysis.unattributed_failures << "\n";
    }
    os << "  attribution " << (analysis.attribution_complete() ? "complete" : "INCOMPLETE")
       << "\n";
  }

  if (!analysis.stages.empty()) {
    std::size_t width = 12;
    for (const auto& [name, stats] : analysis.stages) width = std::max(width, name.size());
    os << "\nstages:" << std::setw(static_cast<int>(width) - 4) << ""
       << "  count     failed    mean_dur     max_dur\n";
    for (const auto& [name, stats] : analysis.stages) {
      const double mean =
          stats.count > 0 ? stats.total_dur / static_cast<double>(stats.count) : 0.0;
      os << "  " << std::left << std::setw(static_cast<int>(width)) << name << std::right
         << std::setw(8) << stats.count << std::setw(10) << stats.failed << "  " << std::fixed
         << std::setprecision(6) << std::setw(10) << mean << "  " << std::setw(10)
         << stats.max_dur << "\n";
    }
  }

  if (!analysis.attempts.empty() && top_k > 0) {
    std::vector<const AttemptSummary*> slowest;
    slowest.reserve(analysis.attempts.size());
    for (const AttemptSummary& a : analysis.attempts) slowest.push_back(&a);
    const bool by_wall =
        std::any_of(slowest.begin(), slowest.end(), [](const auto* a) { return a->has_wall; });
    std::stable_sort(slowest.begin(), slowest.end(),
                     [by_wall](const AttemptSummary* a, const AttemptSummary* b) {
                       return (by_wall ? a->wall_us : a->dur) > (by_wall ? b->wall_us : b->dur);
                     });
    if (slowest.size() > top_k) slowest.resize(top_k);
    os << "\nslowest attempts (by " << (by_wall ? "wall_us" : "dur") << "):\n";
    os << "  trace              t         " << (by_wall ? "wall_us" : "dur") << "      spans  outcome\n";
    for (const AttemptSummary* a : slowest) {
      os << "  " << std::hex << std::setw(16) << std::setfill('0') << a->trace_id << std::dec
         << std::setfill(' ') << "  " << std::fixed << std::setprecision(3) << std::setw(8)
         << a->t << "  " << std::setprecision(6) << std::setw(10)
         << (by_wall ? a->wall_us : a->dur) << "  " << std::setw(5) << a->spans << "  "
         << (a->ok ? "ok" : loss_stage_name(a->loss)) << "\n";
    }
  }
}

}  // namespace jrsnd::obs
