// Causal span tracing (docs/observability.md).
//
// A trace is one discovery attempt; a span is one pipeline stage inside it
// (a D-NDP sub-session, a chip transmit, the sync scan, an RS decode, a
// seal/unseal). Spans form a tree: the thread-local current span context is
// the parent of any span opened while it is alive, so the causal chain
// tx -> channel -> rx -> handshake falls out of the call structure without
// threading ids through every signature.
//
// Two recording planes, independently switched:
//   * the flight recorder (obs/flight_recorder.hpp) — always on, per-thread
//     fixed-capacity binary rings, zero heap allocation in steady state;
//   * JSONL `span.begin` / `span.end` TraceEvents through the process event
//     log — only when tracing_enabled(), sharing the trace schema every
//     other event uses.
//
// Determinism contract: span ids restart at 1 for every root span and count
// up per trace, so a trace's span tree is a pure function of the seeded
// call sequence — serial and parallel Monte-Carlo runs produce identical
// span records (wall-clock fields are opt-in via set_span_wall_clock and
// off by default for exactly this reason).
#pragma once

#include <chrono>
#include <cstdint>

namespace jrsnd::obs {

/// Why a discovery stage (and transitively an attempt) failed. Every layer
/// that can kill a message reports its verdict through the thread-local
/// loss-reason channel below; the engine folds the reports into exactly one
/// stage per failed attempt (docs/observability.md "loss attribution").
enum class LossStage : std::uint8_t {
  None = 0,       ///< no loss recorded (successful stage)
  NoSharedCode,   ///< the pair's code intersection was empty
  OutOfRange,     ///< endpoints not physical neighbors
  Jammed,         ///< the jammer struck the transmission
  Corrupt,        ///< delivered but malformed / MAC-rejected (tampering)
  DecodeFail,     ///< chip pipeline could not sync or RS-decode
  Timeout,        ///< retry budget exhausted waiting for a response
  Fault,          ///< an injected fault (drop/truncate) killed it
  Crash,          ///< an endpoint was inside an injected crash window
};

inline constexpr std::uint8_t kLossStageCount = 9;

[[nodiscard]] const char* loss_stage_name(LossStage stage) noexcept;

// --- thread-local loss-reason channel ---------------------------------------
//
// PHY layers (AbstractPhy, ChipPhy, FaultyPhy) set the reason when they fail
// or kill a transmission; the protocol engine reads-and-clears it after a
// failed exchange. Plain thread-local stores: no allocation, no locks.

void set_loss_reason(LossStage stage) noexcept;
/// Returns the pending reason and clears it (None when nothing reported).
[[nodiscard]] LossStage take_loss_reason() noexcept;
[[nodiscard]] LossStage peek_loss_reason() noexcept;

// --- span context ------------------------------------------------------------

struct SpanContext {
  std::uint64_t trace_id = 0;  ///< discovery-attempt id (0 = no active trace)
  std::uint32_t span_id = 0;   ///< 1-based, per-trace
  std::uint32_t parent_id = 0; ///< 0 for roots
};

/// The innermost live span on this thread ({0,0,0} when none). TracingPhy
/// stamps this onto TxRecords — the "frame metadata" that lets a trace file
/// tie a PHY transmission back to the handshake stage that sent it.
[[nodiscard]] SpanContext current_span() noexcept;

/// Wall-clock duration fields (`wall_us`) on span.end events. Default off:
/// wall time is nondeterministic and would break the serial-vs-parallel
/// byte-identity of traces. Flight-recorder records always carry wall time
/// (they never leave the process unless a postmortem dumps them).
[[nodiscard]] bool span_wall_clock_enabled() noexcept;
void set_span_wall_clock(bool enabled) noexcept;

/// Deterministic trace-id mix (splitmix64 over the xor-folded inputs) —
/// the helper engines use to derive attempt trace ids from (seed, a, b, k).
[[nodiscard]] std::uint64_t derive_trace_id(std::uint64_t salt, std::uint64_t a,
                                            std::uint64_t b, std::uint64_t k) noexcept;

/// RAII scoped span. Constructing pushes the span as the thread's current
/// context and records a begin; destructing records the end (with ok/loss/
/// dur annotations) and pops back to the parent. `name` must have static
/// storage duration (string literals) — records store the pointer.
class Span {
 public:
  /// Child of the thread's current span (or a detached trace-0 span when no
  /// root is active — still flight-recorded, ids from a thread counter).
  explicit Span(const char* name) noexcept;
  /// Root span: starts trace `trace_id`, resetting the per-trace span
  /// counter so ids are deterministic per attempt.
  Span(const char* name, std::uint64_t trace_id) noexcept;
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_ok(bool ok) noexcept { ok_ = ok; }
  void set_loss(LossStage stage) noexcept { loss_ = stage; }
  /// Deterministic (virtual/simulated) duration reported on the end record.
  void set_dur(double seconds) noexcept {
    dur_ = seconds;
    has_dur_ = true;
  }
  /// Up to two numeric annotations carried on the end record (e.g. the
  /// sub-session's code id). Keys must be string literals.
  void with_u64(const char* key, std::uint64_t value) noexcept;

  [[nodiscard]] const SpanContext& context() const noexcept { return ctx_; }

 private:
  void begin(const char* name) noexcept;

  const char* name_;
  SpanContext ctx_;
  SpanContext saved_current_;
  std::uint32_t saved_next_span_ = 0;
  bool is_root_ = false;
  bool ok_ = true;
  bool has_dur_ = false;
  LossStage loss_ = LossStage::None;
  double dur_ = 0.0;
  const char* ann_key_[2] = {nullptr, nullptr};
  std::uint64_t ann_val_[2] = {0, 0};
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace jrsnd::obs
