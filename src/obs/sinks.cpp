#include "obs/sinks.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>
#include <iostream>
#include <sstream>

namespace jrsnd::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_value(std::ostream& os, const FieldValue& value) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    os << '"' << json_escape(*s) << '"';
  } else if (const auto* d = std::get_if<double>(&value)) {
    if (std::isnan(*d) || std::isinf(*d)) {
      os << "null";
    } else {
      os << *d;
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&value)) {
    os << *i;
  } else if (const auto* u = std::get_if<std::uint64_t>(&value)) {
    os << *u;
  } else if (const auto* b = std::get_if<bool>(&value)) {
    os << (*b ? "true" : "false");
  }
}

void format_value(std::ostream& os, const FieldValue& value) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    os << *s;
  } else {
    write_value(os, value);
  }
}

}  // namespace

void write_jsonl(std::ostream& os, const TraceEvent& event) {
  os << "{\"t\":" << event.t << ",\"seq\":" << event.seq << ",\"sev\":\""
     << severity_name(event.severity) << "\",\"event\":\"" << json_escape(event.name) << '"';
  for (const auto& [key, value] : event.fields) {
    os << ",\"" << json_escape(key) << "\":";
    write_value(os, value);
  }
  os << "}\n";
}

// --- minimal flat-object JSON parser ---------------------------------------

namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool eof() const noexcept { return pos >= text.size(); }
  [[nodiscard]] char peek() const noexcept { return text[pos]; }
  void skip_ws() noexcept {
    while (!eof() && std::isspace(static_cast<unsigned char>(text[pos])) != 0) ++pos;
  }
  bool consume(char c) noexcept {
    skip_ws();
    if (eof() || text[pos] != c) return false;
    ++pos;
    return true;
  }
};

bool parse_string(Cursor& cur, std::string& out) {
  if (!cur.consume('"')) return false;
  out.clear();
  while (!cur.eof()) {
    const char c = cur.text[cur.pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (cur.eof()) return false;
    const char esc = cur.text[cur.pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (cur.pos + 4 > cur.text.size()) return false;
        unsigned code = 0;
        const auto [ptr, ec] = std::from_chars(cur.text.data() + cur.pos,
                                               cur.text.data() + cur.pos + 4, code, 16);
        if (ec != std::errc() || ptr != cur.text.data() + cur.pos + 4) return false;
        cur.pos += 4;
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xc0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
          out += static_cast<char>(0xe0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
          out += static_cast<char>(0x80 | (code & 0x3f));
        }
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

bool parse_value(Cursor& cur, FieldValue& out) {
  cur.skip_ws();
  if (cur.eof()) return false;
  const char c = cur.peek();
  if (c == '"') {
    std::string s;
    if (!parse_string(cur, s)) return false;
    out = std::move(s);
    return true;
  }
  if (cur.text.compare(cur.pos, 4, "true") == 0) {
    cur.pos += 4;
    out = true;
    return true;
  }
  if (cur.text.compare(cur.pos, 5, "false") == 0) {
    cur.pos += 5;
    out = false;
    return true;
  }
  if (cur.text.compare(cur.pos, 4, "null") == 0) {
    cur.pos += 4;
    out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  // Number: scan its extent, then prefer the narrowest faithful type.
  const std::size_t start = cur.pos;
  while (!cur.eof()) {
    const char d = cur.peek();
    if ((d >= '0' && d <= '9') || d == '-' || d == '+' || d == '.' || d == 'e' || d == 'E') {
      ++cur.pos;
    } else {
      break;
    }
  }
  const std::string_view token = cur.text.substr(start, cur.pos - start);
  if (token.empty()) return false;
  const bool integral = token.find_first_of(".eE") == std::string_view::npos;
  if (integral && token[0] != '-') {
    std::uint64_t u = 0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), u);
    if (ec == std::errc() && ptr == token.data() + token.size()) {
      out = u;
      return true;
    }
  }
  if (integral) {
    std::int64_t i = 0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), i);
    if (ec == std::errc() && ptr == token.data() + token.size()) {
      out = i;
      return true;
    }
  }
  double d = 0.0;
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), d);
  if (ec != std::errc() || ptr != token.data() + token.size()) return false;
  out = d;
  return true;
}

double number_of(const FieldValue& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* u = std::get_if<std::uint64_t>(&v)) return static_cast<double>(*u);
  if (const auto* i = std::get_if<std::int64_t>(&v)) return static_cast<double>(*i);
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

std::optional<TraceEvent> parse_jsonl_line(std::string_view line) {
  Cursor cur{line};
  if (!cur.consume('{')) return std::nullopt;
  TraceEvent event;
  cur.skip_ws();
  if (cur.consume('}')) return event;  // empty object
  while (true) {
    std::string key;
    if (!parse_string(cur, key)) return std::nullopt;
    if (!cur.consume(':')) return std::nullopt;
    FieldValue value;
    if (!parse_value(cur, value)) return std::nullopt;

    if (key == "t") {
      event.t = number_of(value);
    } else if (key == "seq") {
      event.seq = static_cast<std::uint64_t>(number_of(value));
    } else if (key == "sev") {
      const auto* s = std::get_if<std::string>(&value);
      if (s == nullptr) return std::nullopt;
      const auto sev = parse_severity(*s);
      if (!sev.has_value()) return std::nullopt;
      event.severity = *sev;
    } else if (key == "event") {
      const auto* s = std::get_if<std::string>(&value);
      if (s == nullptr) return std::nullopt;
      event.name = *s;
    } else {
      event.fields.emplace_back(std::move(key), std::move(value));
    }

    if (cur.consume('}')) break;
    if (!cur.consume(',')) return std::nullopt;
  }
  cur.skip_ws();
  if (!cur.eof()) return std::nullopt;  // trailing garbage
  return event;
}

// --- sinks ------------------------------------------------------------------

PrettyPrintSink::PrettyPrintSink(std::ostream& os) : os_(os) {}

PrettyPrintSink::PrettyPrintSink() : os_(std::cerr) {}

void PrettyPrintSink::write(const TraceEvent& event) {
  std::ostringstream line;  // assemble first so concurrent writers don't interleave
  line << "[t=" << std::fixed << std::setprecision(3) << event.t << ' ' << std::left
       << std::setw(5) << severity_name(event.severity) << "] " << event.name;
  line.unsetf(std::ios::floatfield);
  for (const auto& [key, value] : event.fields) {
    line << ' ' << key << '=';
    format_value(line, value);
  }
  os_ << line.str() << '\n';
}

void PrettyPrintSink::flush() { os_.flush(); }

void JsonlStreamSink::write(const TraceEvent& event) { write_jsonl(os_, event); }

void JsonlStreamSink::flush() { os_.flush(); }

JsonlFileSink::JsonlFileSink(const std::string& path) : file_(path) {}

void JsonlFileSink::write(const TraceEvent& event) {
  if (file_) write_jsonl(file_, event);
}

void JsonlFileSink::flush() {
  if (file_) file_.flush();
}

}  // namespace jrsnd::obs
