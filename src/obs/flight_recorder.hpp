// Always-on flight recorder (docs/observability.md).
//
// Every thread that records gets a fixed-capacity ring of plain-data
// FlightRecords. Pushing is the hot path: one thread-local load, a spinlock
// that is uncontended except while a dump walks the ring, and a struct copy
// — no heap allocation after the ring exists (the perf_alloc harness proves
// this through ChipPhy's instrumented transmit path). Rings live in a global
// intrusive list that is never freed; when a thread exits its ring is marked
// reusable but keeps its contents, so postmortems still see the last N
// records of finished workers.
//
// Dump triggers:
//   * on demand — dump_flight(ostream) / dump_flight_now();
//   * on injected crashes — FaultyPhy notifies flight_on_crash_event() the
//     first time a crash window blocks traffic, which dumps to the
//     configured path (set_flight_dump_path);
//   * on process death — install_flight_crash_handler() hooks SIGSEGV /
//     SIGABRT / SIGBUS and std::terminate with an async-signal-safe writer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/span.hpp"

namespace jrsnd::obs {

enum class FlightKind : std::uint8_t { SpanBegin = 0, SpanEnd = 1, Note = 2 };

[[nodiscard]] const char* flight_kind_name(FlightKind kind) noexcept;

/// One binary trace record. `name` must point at static storage (string
/// literals) — the ring stores the pointer, never a copy.
struct FlightRecord {
  double t_wall = 0.0;  ///< seconds since process start (steady clock)
  double t_sim = 0.0;   ///< event-log sim time / run index at record time
  std::uint64_t trace_id = 0;
  std::uint64_t arg = 0;  ///< note argument / span annotation
  const char* name = nullptr;
  std::uint32_t span_id = 0;
  std::uint32_t parent_id = 0;
  FlightKind kind = FlightKind::Note;
  bool ok = true;
  LossStage loss = LossStage::None;
};

/// Recording switch, default ON (the recorder exists for the runs nobody
/// planned to debug). Benches flip it off to measure its cost.
[[nodiscard]] bool flight_enabled() noexcept;
void set_flight_enabled(bool enabled) noexcept;

/// Per-thread ring capacity in records. Read from JRSND_FLIGHT_CAPACITY at
/// first use (default 256); set_flight_capacity overrides for tests. Only
/// affects rings created afterwards.
[[nodiscard]] std::size_t flight_capacity() noexcept;
void set_flight_capacity(std::size_t records) noexcept;

/// Appends a record to this thread's ring (creating it on first use).
void flight_record(const FlightRecord& record) noexcept;

/// Convenience point record under the current span context (retries,
/// timeouts, fault injections). Zero-alloc; `name` must be a literal.
void flight_note(const char* name, std::uint64_t arg = 0) noexcept;

/// Total records ever pushed / dropped (overwritten) across all rings.
[[nodiscard]] std::uint64_t flight_records_pushed();
[[nodiscard]] std::uint64_t flight_records_dropped();

/// Empties every ring (capacity and ownership unchanged). Test helper.
void flight_reset();

/// Writes every surviving record, oldest wall-clock first, as JSONL
/// `flight.*` events in the standard trace schema. Returns records written.
std::size_t dump_flight(std::ostream& os);

/// Destination for trigger-driven dumps (crash events, signal handler).
/// Empty (the default) disables those dumps.
void set_flight_dump_path(std::string path);
[[nodiscard]] std::string flight_dump_path();

/// Dumps to the configured path now; false if no path or the open failed.
bool dump_flight_now();

/// Called by FaultyPhy when an injected crash window first blocks traffic;
/// dumps to the configured path (at most once per call site's choosing).
void flight_on_crash_event();

/// Async-signal-safe dump onto a raw fd (snprintf + write only) — the
/// primitive the signal handler uses; exposed for tests.
void dump_flight_fd(int fd);

/// Installs SIGSEGV/SIGABRT/SIGBUS handlers and a std::terminate hook that
/// dump the rings to `path` before re-raising. Idempotent.
void install_flight_crash_handler(std::string path);

}  // namespace jrsnd::obs
