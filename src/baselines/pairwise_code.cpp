#include "baselines/pairwise_code.hpp"

namespace jrsnd::baselines {

double PairwiseCodeScheme::pair_code_survival() const noexcept {
  const double n = params_.n;
  const double q = params_.q;
  if (q >= n - 1) return 0.0;
  return ((n - q) * (n - q - 1.0)) / (n * (n - 1.0));
}

double PairwiseCodeScheme::lambda() const noexcept {
  return params_.rho * static_cast<double>(params_.N) *
         static_cast<double>(codes_per_node()) * params_.R;
}

double PairwiseCodeScheme::discovery_latency_s() const noexcept {
  const double m = static_cast<double>(codes_per_node());
  const double n2 = static_cast<double>(params_.N) * static_cast<double>(params_.N);
  const double t_identify = params_.rho * m * (3.0 * m + 4.0) * n2 * params_.l_h() / 2.0;
  const double t_auth = 2.0 * static_cast<double>(params_.N) * params_.l_f() / params_.R +
                        2.0 * params_.t_key;
  return t_identify + t_auth;
}

}  // namespace jrsnd::baselines
