// Baseline 4 (paper §II, ref [3]): Uncoordinated Frequency Hopping key
// establishment — Strasser, Popper, Capkun, Cagalj, IEEE S&P 2008.
//
// UFH breaks the anti-jamming/key circular dependency WITHOUT pre-shared
// secrets: the sender transmits each key-establishment fragment on a
// random channel out of c; the receiver listens on its own random channel;
// a fragment lands when the two coincide (prob 1/c per slot) and the
// jammer, who can block z of the c channels per slot, missed it. Fragments
// are hash-linked (each carries the digest of its successor) so an
// attacker cannot splice messages — but anyone, attacker included, may
// START a chain, which is exactly the verification-flooding DoS the JR-SND
// paper holds against the public-strategy schemes [2]-[10].
//
// We implement the fragment chain with the repository's real SHA-256, the
// slot-coincidence channel, the per-slot jammer, and the attacker's
// insertion workload, so bench/ufh_comparison can put genuine numbers next
// to JR-SND: UFH needs no authority and survives full compromise, but its
// key-establishment latency is orders of magnitude above D-NDP's and its
// DoS exposure is unbounded.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bit_vector.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace jrsnd::baselines {

struct UfhParams {
  std::uint32_t channels = 200;        ///< c: orthogonal channels
  std::uint32_t jammed_channels = 8;   ///< z: channels J blocks per slot
  double slot_seconds = 2e-3;          ///< one hop/fragment slot
  std::uint32_t fragment_payload_bits = 256;  ///< key material per fragment
  std::uint32_t fragments = 8;         ///< M: fragments per key message
};

/// One hash-linked fragment chain (the sender's key-establishment message).
class UfhFragmentChain {
 public:
  /// Splits `message` into params.fragments fragments and links them
  /// back-to-front: fragment i carries H(fragment_{i+1}).
  UfhFragmentChain(const UfhParams& params, const BitVector& message);

  struct Fragment {
    std::uint32_t index = 0;
    BitVector payload;
    crypto::Sha256Digest next_digest{};  ///< zero for the last fragment
  };

  [[nodiscard]] const std::vector<Fragment>& fragments() const noexcept { return fragments_; }

  /// Verifies a received chain: every fragment's digest must match its
  /// successor (the receiver's reassembly check). Returns the reassembled
  /// message, or nullopt on any linkage violation.
  [[nodiscard]] static std::optional<BitVector> reassemble(
      const UfhParams& params, const std::vector<Fragment>& received);

  /// The digest of a fragment as used in the chain links.
  [[nodiscard]] static crypto::Sha256Digest digest_of(const Fragment& fragment);

 private:
  std::vector<Fragment> fragments_;
};

/// Slot-level simulation of the UFH transfer of one fragment chain.
class UfhExchange {
 public:
  UfhExchange(const UfhParams& params, Rng& rng);

  struct Result {
    std::uint64_t slots = 0;          ///< slots until the full chain landed
    double seconds = 0.0;             ///< slots * slot_seconds
    std::uint64_t fragments_heard = 0;  ///< deliveries incl. duplicates
    bool reassembled = false;         ///< hash-chain verified end to end
  };

  /// Runs until every fragment of `chain` has been received (and the chain
  /// verifies), or `max_slots` elapse. Sender repeats fragments round-robin
  /// on random channels; receiver hops independently; the jammer blocks
  /// `jammed_channels` random channels each slot.
  [[nodiscard]] Result run(const UfhFragmentChain& chain, std::uint64_t max_slots = 2000000);

  /// Expected slots per fragment delivery: c / (1 - z/c) coincidence slots.
  [[nodiscard]] double expected_slots_per_fragment() const noexcept;

  /// Expected whole-chain transfer time (coupon-collector over fragments).
  [[nodiscard]] double expected_transfer_seconds() const noexcept;

 private:
  UfhParams params_;
  Rng& rng_;
};

/// The DoS side: an attacker floods `insertions` fabricated fragments; a
/// receiver must hash every one against its pending chains before it can
/// discard it. Returns the hash-verification count a victim performs —
/// linear in the attacker budget, with no revocation lever to pull.
[[nodiscard]] std::uint64_t ufh_dos_verifications(std::uint64_t insertions) noexcept;

}  // namespace jrsnd::baselines
