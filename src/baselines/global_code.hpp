// Baseline 1 (paper §I): one network-wide shared spread code.
//
// Trivially bootstraps — every pair can talk immediately — but is a single
// point of failure: compromising ANY node reveals THE code, after which a
// reactive jammer defeats every neighbor discovery in the network. The
// bench compares its discovery probability against JR-SND as q grows.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace jrsnd::baselines {

class GlobalCodeScheme {
 public:
  /// n nodes, q of them compromised (uniformly at random).
  GlobalCodeScheme(std::uint32_t n, std::uint32_t q) : n_(n), q_(q) {}

  /// P(the single code is still secret) = [q == 0].
  [[nodiscard]] double code_survival_probability() const noexcept { return q_ == 0 ? 1.0 : 0.0; }

  /// Discovery probability of a random physical-neighbor pair under
  /// reactive jamming: 1 while no node is compromised, 0 afterwards.
  [[nodiscard]] double discovery_probability_reactive() const noexcept {
    return code_survival_probability();
  }

  /// Under random jamming with z signals the jammer always picks the right
  /// code once compromised: identical collapse.
  [[nodiscard]] double discovery_probability_random() const noexcept {
    return code_survival_probability();
  }

  /// One Monte-Carlo draw (kept for interface symmetry with JR-SND runs).
  [[nodiscard]] bool simulate_pair_discovery(Rng& rng) const noexcept {
    (void)rng;
    return q_ == 0;
  }

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t q() const noexcept { return q_; }

 private:
  std::uint32_t n_;
  std::uint32_t q_;
};

}  // namespace jrsnd::baselines
