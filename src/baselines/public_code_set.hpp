// Baseline 3 (paper §II, refs [7]-[10]): a publicly known spread-code set.
//
// UDSSS-style schemes pick codes from a set every party (including the
// adversary) knows. Jamming resilience comes from unpredictable selection —
// the jammer's z signals cover z of the set's |S| codes, so a message
// survives with probability ~ 1 - z/|S| — but the public set also lets the
// adversary INJECT well-formed requests everywhere. Every receiver must run
// the expensive signature verification on each one, and because revocation
// is impossible (the codes are the system), the wasted work is unbounded.
// bench/dos_resilience contrasts this with JR-SND's (l-1)(gamma+1) cap.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace jrsnd::baselines {

class PublicCodeSetScheme {
 public:
  /// `set_size` public codes, jammer with `z` parallel signals.
  PublicCodeSetScheme(std::uint32_t set_size, std::uint32_t z)
      : set_size_(set_size), z_(z) {}

  /// P(one message survives): the jammer covers z of the |S| public codes.
  [[nodiscard]] double message_survival_probability() const noexcept {
    if (z_ >= set_size_) return 0.0;
    return 1.0 - static_cast<double>(z_) / static_cast<double>(set_size_);
  }

  /// One transmission draw.
  [[nodiscard]] bool simulate_message(Rng& rng) const {
    return rng.bernoulli(message_survival_probability());
  }

  /// Verifications forced on the network by `injected` fake requests, each
  /// heard by `receivers_per_request` nodes. No revocation exists: the cost
  /// is linear in the attacker's budget, i.e. unbounded over time.
  [[nodiscard]] static std::uint64_t dos_verifications(std::uint64_t injected,
                                                       std::uint64_t receivers_per_request) {
    return injected * receivers_per_request;
  }

 private:
  std::uint32_t set_size_;
  std::uint32_t z_;
};

}  // namespace jrsnd::baselines
