// Baseline 2 (paper §I): a unique secret spread code per node pair.
//
// Maximally compromise-resilient — codes of non-compromised pairs stay
// secret no matter how many nodes fall — but circularly dependent: before A
// and B discover each other they do not know *which* of their n-1 pair codes
// to monitor, so a receiver must scan every buffered chip position against
// all n-1 codes. This blows the processing/buffering ratio lambda (and with
// it the discovery latency) up by a factor (n-1)/m relative to JR-SND; the
// bench prints the resulting latencies to show where the scheme stops being
// deployable.
#pragma once

#include <cstdint>

#include "core/params.hpp"

namespace jrsnd::baselines {

class PairwiseCodeScheme {
 public:
  explicit PairwiseCodeScheme(const core::Params& params) : params_(params) {}

  /// Codes each node must be able to de-spread with: n - 1.
  [[nodiscard]] std::uint32_t codes_per_node() const noexcept { return params_.n - 1; }

  /// Jamming resilience is ideal: a pair's code is compromised only if one
  /// endpoint is, so a uniformly random pair survives with probability
  /// ((n-q)(n-q-1)) / (n(n-1)).
  [[nodiscard]] double pair_code_survival() const noexcept;

  /// lambda with all n-1 codes scanned: rho * N * (n-1) * R.
  [[nodiscard]] double lambda() const noexcept;

  /// Theorem-2-style identification latency with m replaced by n-1:
  /// the quadratic term rho (n-1)(3(n-1)+4) N^2 l_h / 2.
  [[nodiscard]] double discovery_latency_s() const noexcept;

 private:
  core::Params params_;
};

}  // namespace jrsnd::baselines
