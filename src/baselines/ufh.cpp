#include "baselines/ufh.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace jrsnd::baselines {

namespace {

std::vector<std::uint8_t> fragment_bytes(const UfhFragmentChain::Fragment& fragment) {
  // Canonical serialization for the chain digests: index, payload, link.
  BitVector bv;
  bv.append_uint(fragment.index, 16);
  bv.append(fragment.payload);
  std::vector<std::uint8_t> out = bv.to_bytes();
  out.insert(out.end(), fragment.next_digest.begin(), fragment.next_digest.end());
  return out;
}

}  // namespace

UfhFragmentChain::UfhFragmentChain(const UfhParams& params, const BitVector& message) {
  if (params.fragments == 0) throw std::invalid_argument("UfhFragmentChain: zero fragments");
  const std::size_t per =
      (message.size() + params.fragments - 1) / params.fragments;
  if (per == 0) throw std::invalid_argument("UfhFragmentChain: empty message");

  fragments_.resize(params.fragments);
  for (std::uint32_t i = 0; i < params.fragments; ++i) {
    Fragment& f = fragments_[i];
    f.index = i;
    const std::size_t start = i * per;
    const std::size_t len = start >= message.size()
                                ? 0
                                : std::min(per, message.size() - start);
    f.payload = len == 0 ? BitVector(1) : message.slice(start, len);
  }
  // Link back to front: fragment i carries H(fragment_{i+1}).
  for (std::uint32_t i = params.fragments - 1; i-- > 0;) {
    fragments_[i].next_digest = digest_of(fragments_[i + 1]);
  }
}

crypto::Sha256Digest UfhFragmentChain::digest_of(const Fragment& fragment) {
  return crypto::Sha256::hash(fragment_bytes(fragment));
}

std::optional<BitVector> UfhFragmentChain::reassemble(const UfhParams& params,
                                                      const std::vector<Fragment>& received) {
  if (received.size() != params.fragments) return std::nullopt;
  std::vector<const Fragment*> ordered(params.fragments, nullptr);
  for (const Fragment& f : received) {
    if (f.index >= params.fragments || ordered[f.index] != nullptr) return std::nullopt;
    ordered[f.index] = &f;
  }
  // Verify the hash chain.
  for (std::uint32_t i = 0; i + 1 < params.fragments; ++i) {
    if (ordered[i]->next_digest != digest_of(*ordered[i + 1])) return std::nullopt;
  }
  BitVector message;
  for (const Fragment* f : ordered) message.append(f->payload);
  return message;
}

UfhExchange::UfhExchange(const UfhParams& params, Rng& rng) : params_(params), rng_(rng) {
  if (params.channels == 0 || params.jammed_channels >= params.channels) {
    throw std::invalid_argument("UfhExchange: need jammed_channels < channels");
  }
}

UfhExchange::Result UfhExchange::run(const UfhFragmentChain& chain, std::uint64_t max_slots) {
  Result result;
  const auto& fragments = chain.fragments();
  std::vector<bool> have(fragments.size(), false);
  std::size_t have_count = 0;
  std::vector<UfhFragmentChain::Fragment> received;

  for (std::uint64_t slot = 0; slot < max_slots && have_count < fragments.size(); ++slot) {
    ++result.slots;
    // Sender repeats fragments round-robin; both sides hop independently.
    const auto& fragment = fragments[slot % fragments.size()];
    const std::uint64_t tx_channel = rng_.uniform(params_.channels);
    const std::uint64_t rx_channel = rng_.uniform(params_.channels);
    if (tx_channel != rx_channel) continue;

    // The jammer blocks `jammed_channels` random channels this slot.
    bool jammed = false;
    for (std::uint32_t j = 0; j < params_.jammed_channels && !jammed; ++j) {
      jammed = rng_.uniform(params_.channels) == tx_channel;
    }
    if (jammed) continue;

    ++result.fragments_heard;
    if (!have[fragment.index]) {
      have[fragment.index] = true;
      ++have_count;
      received.push_back(fragment);
    }
  }
  result.seconds = static_cast<double>(result.slots) * params_.slot_seconds;
  if (have_count == fragments.size()) {
    UfhParams check = params_;
    check.fragments = static_cast<std::uint32_t>(fragments.size());
    result.reassembled = UfhFragmentChain::reassemble(check, received).has_value();
  }
  return result;
}

double UfhExchange::expected_slots_per_fragment() const noexcept {
  const double c = params_.channels;
  // P(coincide) = 1/c; P(not jammed | coincide) ~= (1 - 1/c)^z ~= 1 - z/c.
  const double p = (1.0 / c) * std::pow(1.0 - 1.0 / c, params_.jammed_channels);
  return 1.0 / p;
}

double UfhExchange::expected_transfer_seconds() const noexcept {
  // Coincidence slots are random, so each successful delivery carries a
  // ~uniformly random fragment of the round-robin rotation: collecting all
  // M distinct fragments is coupon collecting, ~ M * H_M deliveries, each
  // costing expected_slots_per_fragment() slots.
  const double m = params_.fragments;
  double harmonic = 0.0;
  for (std::uint32_t i = 1; i <= params_.fragments; ++i) harmonic += 1.0 / i;
  return expected_slots_per_fragment() * m * harmonic * params_.slot_seconds;
}

std::uint64_t ufh_dos_verifications(std::uint64_t insertions) noexcept { return insertions; }

}  // namespace jrsnd::baselines
