#include "baselines/global_code.hpp"

// Header-only semantics; this TU anchors the target in the build.
