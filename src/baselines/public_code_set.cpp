#include "baselines/public_code_set.hpp"

// Header-only semantics; this TU anchors the target in the build.
