#include "common/math_util.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace jrsnd {

double log_gamma(double x) {
  // Lanczos approximation, g = 7, n = 9 coefficients.
  static constexpr double kCoeffs[9] = {
      0.99999999999980993,  676.5203681218851,    -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,  12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  assert(x > 0.0);
  if (x < 0.5) {
    // Reflection formula keeps accuracy for small x.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = kCoeffs[0];
  const double t = x + 7.5;
  for (int i = 1; i < 9; ++i) a += kCoeffs[i] / (x + static_cast<double>(i));
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

double log_binomial(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n || n < 0) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return log_gamma(static_cast<double>(n) + 1.0) -
         log_gamma(static_cast<double>(k) + 1.0) -
         log_gamma(static_cast<double>(n - k) + 1.0);
}

double binomial(std::int64_t n, std::int64_t k) {
  const double lb = log_binomial(n, k);
  if (std::isinf(lb)) return 0.0;
  return std::exp(lb);
}

double binomial_pmf(std::int64_t trials, std::int64_t successes, double p) {
  if (successes < 0 || successes > trials) return 0.0;
  if (p <= 0.0) return successes == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return successes == trials ? 1.0 : 0.0;
  const double logp = log_binomial(trials, successes) +
                      static_cast<double>(successes) * std::log(p) +
                      static_cast<double>(trials - successes) * std::log1p(-p);
  return std::exp(logp);
}

double pr_shared_codes(std::int64_t m, std::int64_t x, std::int64_t n, std::int64_t l) {
  assert(n >= 2 && l >= 1);
  const double p = static_cast<double>(l - 1) / static_cast<double>(n - 1);
  return binomial_pmf(m, x, p);
}

double code_compromise_probability(std::int64_t n, std::int64_t l, std::int64_t q) {
  assert(n >= 0 && l >= 0 && q >= 0);
  if (q == 0) return 0.0;
  if (q > n - l) return 1.0;  // every q-subset must hit the l holders
  // 1 - C(n-l, q)/C(n, q) in log space.
  const double log_ratio = log_binomial(n - l, q) - log_binomial(n, q);
  return -std::expm1(log_ratio);
}

double clamp01(double v) {
  if (v < 0.0) return 0.0;
  if (v > 1.0) return 1.0;
  return v;
}

}  // namespace jrsnd
