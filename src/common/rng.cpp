#include "common/rng.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace jrsnd {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro requires a nonzero state; splitmix64 makes all-zero output
  // astronomically unlikely, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // range == 0 means the full 64-bit span [lo, hi]; return raw bits then.
  if (range == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(uniform(range));
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double rate) noexcept {
  assert(rate > 0.0);
  // -log(1 - U) with U in [0,1); 1-U in (0,1] avoids log(0).
  return -std::log1p(-uniform01()) / rate;
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t population,
                                                           std::uint32_t k) {
  assert(k <= population);
  // Floyd's algorithm: for j in [population-k, population), pick t uniform in
  // [0, j]; insert t unless already present, else insert j.
  std::unordered_set<std::uint32_t> chosen;
  std::vector<std::uint32_t> result;
  chosen.reserve(k);
  result.reserve(k);
  for (std::uint32_t j = population - k; j < population; ++j) {
    const auto t = static_cast<std::uint32_t>(uniform(j + 1));
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  // Floyd's output has a position bias; shuffle to make order uniform too.
  shuffle(std::span<std::uint32_t>(result));
  return result;
}

Rng Rng::split() noexcept {
  // Derive a child seed from fresh parent output; the parent advances, so
  // successive splits yield independent streams.
  return Rng(next() ^ 0xa5a5a5a55a5a5a5aULL);
}

}  // namespace jrsnd
