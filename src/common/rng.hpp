// Deterministic, splittable random number generation.
//
// Every stochastic decision in the simulator — code pre-distribution,
// node placement, jammer code guesses, nonce generation in examples — draws
// from an Rng seeded from the experiment seed, so each of the paper's "100
// simulation runs, each with a different random seed" is exactly
// reproducible. The engine is xoshiro256**, seeded via splitmix64.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace jrsnd {

/// splitmix64 step; used for seeding and for cheap stateless mixing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator, so it also plugs into <random>
/// distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds deterministically from `seed` (any value, including 0).
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Raw 64 random bits.
  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Fisher-Yates shuffle of an entire span.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// k distinct values sampled uniformly from [0, population), in random
  /// order. Precondition: k <= population. Uses Floyd's algorithm, O(k).
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t population, std::uint32_t k);

  /// Derives an independent child generator; the child stream does not
  /// overlap the parent's for any practical draw count. Used to give each
  /// simulation run / node / subsystem its own stream.
  [[nodiscard]] Rng split() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace jrsnd
