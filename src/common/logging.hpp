// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per run, but experiment
// drivers may run seeds on several threads, so emission is serialized. Log
// level is a process-wide setting; benches default to Warn so figure output
// stays clean, while examples raise it to Info to narrate protocol steps.
// The initial level honors the JRSND_LOG_LEVEL environment variable
// (trace|debug|info|warn|error|off, case-insensitive) at first use.
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace jrsnd {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Sets the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parses "trace" | "debug" | "info" | "warn" | "error" | "off"
/// (case-insensitive). Returns nullopt for anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name) noexcept;

/// When enabled, each line is prefixed with an ISO-8601 UTC wall-clock
/// timestamp ("2026-08-06T12:34:56Z"). Off by default to keep figure and
/// test output byte-stable.
void set_log_timestamps(bool enabled) noexcept;
[[nodiscard]] bool log_timestamps() noexcept;

/// Replaces the stderr writer. The sink receives the already-filtered level,
/// tag, and message (no prefix/formatting applied); pass nullptr to restore
/// the default stderr writer. Intended for tests and embedding.
using LogSink = std::function<void(LogLevel, const std::string& tag, const std::string& message)>;
void set_log_sink(LogSink sink);

/// Emits one line ("[LEVEL] tag: message") to stderr — or the installed
/// sink — if `level` passes the threshold. Thread-safe.
void log_line(LogLevel level, const std::string& tag, const std::string& message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string tag) : level_(level), tag_(std::move(tag)) {}
  ~LogStream() { log_line(level_, tag_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};

}  // namespace detail

#define JRSND_LOG(level, tag)                            \
  if (::jrsnd::log_level() > (level)) {                  \
  } else                                                 \
    ::jrsnd::detail::LogStream((level), (tag))

#define JRSND_TRACE(tag) JRSND_LOG(::jrsnd::LogLevel::Trace, tag)
#define JRSND_DEBUG(tag) JRSND_LOG(::jrsnd::LogLevel::Debug, tag)
#define JRSND_INFO(tag) JRSND_LOG(::jrsnd::LogLevel::Info, tag)
#define JRSND_WARN(tag) JRSND_LOG(::jrsnd::LogLevel::Warn, tag)
#define JRSND_ERROR(tag) JRSND_LOG(::jrsnd::LogLevel::Error, tag)

}  // namespace jrsnd
