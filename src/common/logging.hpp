// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per run, but experiment
// drivers may run seeds on several threads, so emission is serialized. Log
// level is a process-wide setting; benches default to Warn so figure output
// stays clean, while examples raise it to Info to narrate protocol steps.
#pragma once

#include <sstream>
#include <string>

namespace jrsnd {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Sets the process-wide minimum level that will be emitted.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line ("[LEVEL] tag: message") to stderr if `level` passes the
/// threshold. Thread-safe.
void log_line(LogLevel level, const std::string& tag, const std::string& message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string tag) : level_(level), tag_(std::move(tag)) {}
  ~LogStream() { log_line(level_, tag_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};

}  // namespace detail

#define JRSND_LOG(level, tag)                            \
  if (::jrsnd::log_level() > (level)) {                  \
  } else                                                 \
    ::jrsnd::detail::LogStream((level), (tag))

#define JRSND_TRACE(tag) JRSND_LOG(::jrsnd::LogLevel::Trace, tag)
#define JRSND_DEBUG(tag) JRSND_LOG(::jrsnd::LogLevel::Debug, tag)
#define JRSND_INFO(tag) JRSND_LOG(::jrsnd::LogLevel::Info, tag)
#define JRSND_WARN(tag) JRSND_LOG(::jrsnd::LogLevel::Warn, tag)
#define JRSND_ERROR(tag) JRSND_LOG(::jrsnd::LogLevel::Error, tag)

}  // namespace jrsnd
