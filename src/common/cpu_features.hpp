// Runtime CPU feature probe (ROADMAP: SIMD-batched correlator).
//
// The batched sync kernel ships three x86 backends (scalar, AVX2,
// AVX-512/VPOPCNTDQ) plus a NEON variant on aarch64, selected once at
// startup. Feature detection lives here, in common/, so any future SIMD
// consumer (BitVector, ECC) shares one probe instead of re-reading CPUID.
//
// The probe checks both the CPU capability bits (CPUID leaf 7) and the OS
// context-save support (OSXSAVE + XCR0): a kernel that does not preserve
// ZMM state makes the AVX-512 bits in CPUID meaningless, so both must agree
// before a vector backend is reported usable.
#pragma once

namespace jrsnd {

struct CpuFeatures {
  bool avx2 = false;              ///< AVX2 usable (CPUID + OS YMM state)
  bool avx512_vpopcntdq = false;  ///< AVX-512F + VPOPCNTDQ usable (+ OS ZMM state)
  bool neon = false;              ///< Advanced SIMD (always true on aarch64)
};

/// The probed feature set, resolved once per process. Never throws; on
/// non-x86, non-aarch64 targets every x86/NEON flag reads false.
[[nodiscard]] const CpuFeatures& cpu_features() noexcept;

}  // namespace jrsnd
