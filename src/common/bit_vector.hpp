// Packed bit vector used for message payloads and crypto digests.
//
// Wire messages in JR-SND are bit-granular (HELLO is l_t + l_id = 21 bits by
// Table I), so byte-oriented containers are not a natural fit. BitVector
// stores bits MSB-first within each 64-bit word and supports append of
// arbitrary-width fields, slicing, and XOR — everything the message codecs
// and the session-code derivation need.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace jrsnd {

class BitVector {
 public:
  BitVector() = default;

  /// A vector of `count` zero bits.
  explicit BitVector(std::size_t count);

  /// Builds from bytes, MSB of bytes[0] first.
  static BitVector from_bytes(std::span<const std::uint8_t> bytes);

  /// Builds from a string of '0'/'1' characters (test convenience).
  static BitVector from_string(const std::string& bits);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Drops every bit but keeps the allocated word storage — the reset half
  /// of the reuse pattern the transmit scratch arena is built on.
  void clear() noexcept {
    words_.clear();
    size_ = 0;
  }

  /// Ensures capacity for `bit_count` bits without changing contents, so a
  /// later append/push_back run up to that size cannot allocate.
  void reserve(std::size_t bit_count) { words_.reserve((bit_count + kWordBits - 1) / kWordBits); }

  /// Shrinks to the first `new_size` bits (no-op when already shorter).
  /// Re-zeroes the slack past the new end to preserve the invariant.
  void truncate(std::size_t new_size) noexcept;

  /// Replaces the contents with the bitwise complement of `other`, reusing
  /// this vector's storage (no allocation once capacity suffices).
  void assign_inverted(const BitVector& other);

  [[nodiscard]] bool get(std::size_t index) const;
  void set(std::size_t index, bool value);
  /// Flips the bit at `index` (models a channel bit error).
  void flip(std::size_t index);

  /// Appends a single bit.
  void push_back(bool bit);

  /// Appends the low `width` bits of `value`, most significant first.
  /// Precondition: width <= 64.
  void append_uint(std::uint64_t value, std::size_t width);

  /// Appends all bits of `other` (word-level, any alignment).
  void append(const BitVector& other);

  /// A copy with every bit flipped.
  [[nodiscard]] BitVector inverted() const;

  /// Reads `width` bits starting at `offset` as an unsigned integer
  /// (MSB first). Precondition: offset + width <= size(), width <= 64.
  [[nodiscard]] std::uint64_t read_uint(std::size_t offset, std::size_t width) const;

  /// The sub-vector [offset, offset + count).
  [[nodiscard]] BitVector slice(std::size_t offset, std::size_t count) const;

  /// Bitwise XOR; both operands must have equal size.
  [[nodiscard]] BitVector xor_with(const BitVector& other) const;

  /// Packs into bytes, zero-padding the final partial byte.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

  /// to_bytes into a caller-owned buffer (cleared and refilled); allocation
  /// free once the buffer's capacity covers (size() + 7) / 8 bytes.
  void to_bytes_into(std::vector<std::uint8_t>& out) const;

  /// '0'/'1' string (debugging / tests).
  [[nodiscard]] std::string to_string() const;

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept;

  /// Hamming distance to `other`; both must have equal size.
  /// Word-level XOR + popcount, no allocation.
  [[nodiscard]] std::size_t hamming_distance(const BitVector& other) const;

  /// The packed 64-bit words, MSB-first within each word. Bits beyond
  /// size() in the final word are guaranteed zero (class invariant) — the
  /// dsss sync kernel relies on this to correlate against raw words.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

  bool operator==(const BitVector& other) const noexcept;

 private:
  static constexpr std::size_t kWordBits = 64;
  [[nodiscard]] static std::size_t word_index(std::size_t bit) noexcept { return bit / kWordBits; }
  [[nodiscard]] static std::uint64_t bit_mask(std::size_t bit) noexcept {
    return 1ULL << (kWordBits - 1 - (bit % kWordBits));
  }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace jrsnd
