// Fixed-size thread pool + blocking parallel_for (docs/performance.md).
//
// The Monte-Carlo layer of every figure bench is embarrassingly parallel:
// config.params.runs fully-deterministic seeded worlds with no shared mutable
// state. A work-stealing scheduler would be over-engineering for that shape —
// this pool hands out loop indices from one atomic counter (workers that
// finish early simply grab the next index; there is nothing to steal), and
// the caller reduces results in index order so parallel output is
// bit-identical to serial.
//
// Thread count policy, in order:
//   * JRSND_THREADS env var (>= 1; 1 restores fully serial behavior),
//   * hardware concurrency otherwise.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace jrsnd {

class ThreadPool {
 public:
  /// Spawns `threads` workers (values < 1 are clamped to 1). A pool of size
  /// 1 spawns no workers at all: parallel_for runs inline on the caller.
  explicit ThreadPool(std::size_t threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count, including the calling thread (>= 1).
  [[nodiscard]] std::size_t size() const noexcept { return thread_count_; }

  /// Runs fn(index) for every index in [0, count), distributing indices
  /// dynamically across the pool plus the calling thread, and blocks until
  /// all complete. If any invocation throws, the first exception (in
  /// completion order) is rethrown on the caller after the loop drains;
  /// remaining indices still run.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// As above, but fn also receives a stable worker id in [0, size()):
  /// 0 for the calling thread, 1.. for pool workers. Tasks with the same
  /// worker id never run concurrently, so per-worker scratch state
  /// (e.g. an obs scratch registry) needs no further synchronization.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// JRSND_THREADS env var if set to an integer >= 1 (clamped to 256),
  /// otherwise std::thread::hardware_concurrency() (at least 1).
  [[nodiscard]] static std::size_t default_thread_count();

 private:
  struct Job;
  void worker_loop(std::size_t worker_id);

  std::size_t thread_count_ = 1;
  struct Impl;
  Impl* impl_ = nullptr;  // pimpl keeps <thread>/<condition_variable> out of the header
};

}  // namespace jrsnd
