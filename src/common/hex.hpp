// Hex encode/decode helpers for digests and debugging output.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace jrsnd {

/// Lowercase hex encoding of `bytes`.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

/// Decodes a hex string (even length, upper or lower case).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] std::vector<std::uint8_t> from_hex(const std::string& hex);

}  // namespace jrsnd
