// Strong identifier and simulated-time types shared by every jrsnd subsystem.
//
// The paper reasons about nodes, spread codes, and wall-clock durations
// (chip times, buffering windows, key-computation costs). We give each its
// own vocabulary type so that a CodeId can never be passed where a NodeId is
// expected and a chip count can never be confused with seconds.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace jrsnd {

/// Identifies a MANET node. The paper gives IDs l_id = 16 bits; we keep a
/// 32-bit representation so simulations may exceed 65k nodes, but the wire
/// encoding (src/core/messages.*) serializes only l_id bits.
enum class NodeId : std::uint32_t {};

/// Identifies a spread code within the authority's secret pool C = {C_i}.
enum class CodeId : std::uint32_t {};

constexpr NodeId kInvalidNode{std::numeric_limits<std::uint32_t>::max()};
constexpr CodeId kInvalidCode{std::numeric_limits<std::uint32_t>::max()};

constexpr std::uint32_t raw(NodeId id) noexcept { return static_cast<std::uint32_t>(id); }
constexpr std::uint32_t raw(CodeId id) noexcept { return static_cast<std::uint32_t>(id); }

constexpr NodeId node_id(std::uint32_t v) noexcept { return NodeId{v}; }
constexpr CodeId code_id(std::uint32_t v) noexcept { return CodeId{v}; }

/// Simulated duration in seconds. A thin strong type: arithmetic is allowed,
/// but implicit mixing with raw doubles is not.
class Duration {
 public:
  constexpr Duration() noexcept = default;
  constexpr explicit Duration(double seconds) noexcept : seconds_(seconds) {}

  [[nodiscard]] constexpr double seconds() const noexcept { return seconds_; }
  [[nodiscard]] constexpr double millis() const noexcept { return seconds_ * 1e3; }
  [[nodiscard]] constexpr double micros() const noexcept { return seconds_ * 1e6; }

  constexpr auto operator<=>(const Duration&) const noexcept = default;

  constexpr Duration& operator+=(Duration d) noexcept { seconds_ += d.seconds_; return *this; }
  constexpr Duration& operator-=(Duration d) noexcept { seconds_ -= d.seconds_; return *this; }
  constexpr Duration& operator*=(double k) noexcept { seconds_ *= k; return *this; }

  friend constexpr Duration operator+(Duration a, Duration b) noexcept { return Duration(a.seconds_ + b.seconds_); }
  friend constexpr Duration operator-(Duration a, Duration b) noexcept { return Duration(a.seconds_ - b.seconds_); }
  friend constexpr Duration operator*(Duration a, double k) noexcept { return Duration(a.seconds_ * k); }
  friend constexpr Duration operator*(double k, Duration a) noexcept { return Duration(k * a.seconds_); }
  friend constexpr double operator/(Duration a, Duration b) noexcept { return a.seconds_ / b.seconds_; }
  friend constexpr Duration operator/(Duration a, double k) noexcept { return Duration(a.seconds_ / k); }

 private:
  double seconds_ = 0.0;
};

constexpr Duration seconds(double s) noexcept { return Duration(s); }
constexpr Duration millis(double ms) noexcept { return Duration(ms * 1e-3); }
constexpr Duration micros(double us) noexcept { return Duration(us * 1e-6); }

/// A point on the simulated timeline (seconds since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() noexcept = default;
  constexpr explicit TimePoint(double seconds) noexcept : seconds_(seconds) {}

  [[nodiscard]] constexpr double seconds() const noexcept { return seconds_; }

  constexpr auto operator<=>(const TimePoint&) const noexcept = default;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) noexcept { return TimePoint(t.seconds_ + d.seconds()); }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) noexcept { return TimePoint(t.seconds_ - d.seconds()); }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) noexcept { return Duration(a.seconds_ - b.seconds_); }

 private:
  double seconds_ = 0.0;
};

constexpr TimePoint kSimStart{0.0};

}  // namespace jrsnd

template <>
struct std::hash<jrsnd::NodeId> {
  std::size_t operator()(jrsnd::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(jrsnd::raw(id));
  }
};

template <>
struct std::hash<jrsnd::CodeId> {
  std::size_t operator()(jrsnd::CodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(jrsnd::raw(id));
  }
};
