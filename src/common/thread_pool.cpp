#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace jrsnd {

/// One parallel_for invocation: an atomic index dispenser plus completion
/// accounting. Workers claim indices until the dispenser runs dry.
struct ThreadPool::Job {
  std::size_t count = 0;
  std::function<void(std::size_t, std::size_t)> fn;  // (index, worker_id)
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::exception_ptr first_error;  // guarded by error_mutex
  std::mutex error_mutex;

  /// Runs indices on behalf of `worker_id` until none remain.
  void drain(std::size_t worker_id) {
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      try {
        fn(index, worker_id);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    }
  }
};

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable wake;     // workers wait here for a job
  std::condition_variable finished; // the caller waits here for completion
  std::shared_ptr<Job> job;         // null when idle
  std::uint64_t generation = 0;     // bumped per submitted job
  bool stop = false;
  std::vector<std::thread> workers;
};

ThreadPool::ThreadPool(std::size_t threads)
    : thread_count_(std::max<std::size_t>(threads, 1)), impl_(new Impl) {
  // Worker 0 is the calling thread; spawn the rest.
  for (std::size_t id = 1; id < thread_count_; ++id) {
    impl_->workers.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      impl_->wake.wait(lock, [&] {
        return impl_->stop || (impl_->job != nullptr && impl_->generation != seen_generation);
      });
      if (impl_->stop) return;
      job = impl_->job;
      seen_generation = impl_->generation;
    }
    job->drain(worker_id);
    if (job->done.load(std::memory_order_acquire) == job->count) {
      // The completion flag is an atomic updated outside the mutex; passing
      // through the lock before notifying orders this notify after the
      // caller's predicate check, so the wakeup cannot be lost.
      { const std::lock_guard<std::mutex> lock(impl_->mutex); }
      impl_->finished.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (thread_count_ == 1 || count == 1) {
    // Serial fast path: no job setup, exceptions propagate directly.
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }

  auto job = std::make_shared<Job>();
  job->count = count;
  job->fn = fn;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = job;
    ++impl_->generation;
  }
  impl_->wake.notify_all();

  // The caller is worker 0: it works instead of idling, and a pool used
  // from a single thread still makes progress.
  job->drain(0);

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->finished.wait(
        lock, [&] { return job->done.load(std::memory_order_acquire) == job->count; });
    impl_->job = nullptr;
  }
  if (job->first_error) std::rethrow_exception(job->first_error);
}

void ThreadPool::parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) {
  parallel_for(count, [&fn](std::size_t index, std::size_t /*worker*/) { fn(index); });
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("JRSND_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && value >= 1) {
      return static_cast<std::size_t>(std::min<long>(value, 256));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace jrsnd
