#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace jrsnd {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& tag, const std::string& message) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), tag.c_str(), message.c_str());
}

}  // namespace jrsnd
