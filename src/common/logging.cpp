#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <utility>

namespace jrsnd {

namespace {

/// Reads JRSND_LOG_LEVEL once; unset or unparsable falls back to Warn.
LogLevel initial_level() noexcept {
  const char* env = std::getenv("JRSND_LOG_LEVEL");
  if (env != nullptr) {
    if (const auto parsed = parse_log_level(env); parsed.has_value()) return *parsed;
  }
  return LogLevel::Warn;
}

std::atomic<LogLevel> g_level{initial_level()};
std::atomic<bool> g_timestamps{false};
std::mutex g_emit_mutex;
LogSink g_sink;  // guarded by g_emit_mutex; empty = stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = (a[i] >= 'A' && a[i] <= 'Z') ? static_cast<char>(a[i] - 'A' + 'a') : a[i];
    if (ca != b[i]) return false;
  }
  return true;
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_log_level(std::string_view name) noexcept {
  if (iequals(name, "trace")) return LogLevel::Trace;
  if (iequals(name, "debug")) return LogLevel::Debug;
  if (iequals(name, "info")) return LogLevel::Info;
  if (iequals(name, "warn") || iequals(name, "warning")) return LogLevel::Warn;
  if (iequals(name, "error")) return LogLevel::Error;
  if (iequals(name, "off") || iequals(name, "none")) return LogLevel::Off;
  return std::nullopt;
}

void set_log_timestamps(bool enabled) noexcept {
  g_timestamps.store(enabled, std::memory_order_relaxed);
}

bool log_timestamps() noexcept { return g_timestamps.load(std::memory_order_relaxed); }

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  g_sink = std::move(sink);
}

void log_line(LogLevel level, const std::string& tag, const std::string& message) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (g_sink) {
    g_sink(level, tag, message);
    return;
  }
  char stamp[32] = "";
  if (log_timestamps()) {
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
#if defined(_WIN32)
    gmtime_s(&utc, &now);
#else
    gmtime_r(&now, &utc);
#endif
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ ", &utc);
  }
  std::fprintf(stderr, "%s[%s] %s: %s\n", stamp, level_name(level), tag.c_str(), message.c_str());
}

}  // namespace jrsnd
