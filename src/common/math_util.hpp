// Numerics shared by the analysis module (Theorems 1-4) and the
// pre-distribution scheme: log-space binomial coefficients (so that
// C(2000, 100)-sized terms never overflow), the binomial pmf of Eq. (1),
// and the code-compromise probability of Eq. (2).
#pragma once

#include <cstdint>

namespace jrsnd {

/// ln Gamma(x) for x > 0 (Lanczos approximation, ~15 significant digits).
[[nodiscard]] double log_gamma(double x);

/// ln C(n, k); returns -infinity when k > n or k < 0 (empty coefficient).
[[nodiscard]] double log_binomial(std::int64_t n, std::int64_t k);

/// C(n, k) computed via log-space; accurate to ~1e-12 relative error.
[[nodiscard]] double binomial(std::int64_t n, std::int64_t k);

/// Binomial pmf: C(trials, successes) p^successes (1-p)^(trials-successes),
/// evaluated in log space for numerical stability.
[[nodiscard]] double binomial_pmf(std::int64_t trials, std::int64_t successes, double p);

/// Eq. (1): probability that two nodes share exactly x spread codes after m
/// rounds of the partition-based pre-distribution with group size l among n
/// nodes:  Pr[x] = C(m,x) ((l-1)/(n-1))^x ((n-l)/(n-1))^(m-x).
[[nodiscard]] double pr_shared_codes(std::int64_t m, std::int64_t x, std::int64_t n,
                                     std::int64_t l);

/// Eq. (2): probability that a given spread code (held by l of the n nodes)
/// is compromised when the adversary compromises q uniformly random nodes:
///   alpha = 1 - C(n-l, q) / C(n, q).
[[nodiscard]] double code_compromise_probability(std::int64_t n, std::int64_t l,
                                                 std::int64_t q);

/// Clamps v into [0, 1].
[[nodiscard]] double clamp01(double v);

}  // namespace jrsnd
