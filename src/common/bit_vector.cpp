#include "common/bit_vector.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace jrsnd {

BitVector::BitVector(std::size_t count)
    : words_((count + kWordBits - 1) / kWordBits, 0), size_(count) {}

BitVector BitVector::from_bytes(std::span<const std::uint8_t> bytes) {
  BitVector v;
  v.words_.reserve((bytes.size() * 8 + kWordBits - 1) / kWordBits);
  for (const std::uint8_t b : bytes) v.append_uint(b, 8);
  return v;
}

BitVector BitVector::from_string(const std::string& bits) {
  BitVector v;
  for (const char c : bits) {
    if (c != '0' && c != '1') throw std::invalid_argument("BitVector::from_string: bad char");
    v.push_back(c == '1');
  }
  return v;
}

bool BitVector::get(std::size_t index) const {
  assert(index < size_);
  return (words_[word_index(index)] & bit_mask(index)) != 0;
}

void BitVector::set(std::size_t index, bool value) {
  assert(index < size_);
  if (value) {
    words_[word_index(index)] |= bit_mask(index);
  } else {
    words_[word_index(index)] &= ~bit_mask(index);
  }
}

void BitVector::flip(std::size_t index) {
  assert(index < size_);
  words_[word_index(index)] ^= bit_mask(index);
}

void BitVector::push_back(bool bit) {
  if (size_ % kWordBits == 0) words_.push_back(0);
  ++size_;
  if (bit) set(size_ - 1, true);
}

void BitVector::append_uint(std::uint64_t value, std::size_t width) {
  assert(width <= 64);
  if (width == 0) return;
  if (width < kWordBits) value &= (std::uint64_t{1} << width) - 1;
  // Word-level splice of the field, MSB-first: align the bits to the top of
  // a word, then OR them across the (at most two) destination words.
  const std::uint64_t top = value << (kWordBits - width);
  const std::size_t offset = size_ % kWordBits;
  const std::size_t new_size = size_ + width;
  words_.resize((new_size + kWordBits - 1) / kWordBits, 0);
  const std::size_t wi = size_ / kWordBits;
  words_[wi] |= top >> offset;
  if (offset != 0 && wi + 1 < words_.size()) {
    words_[wi + 1] |= top << (kWordBits - offset);
  }
  size_ = new_size;
}

void BitVector::append(const BitVector& other) {
  // Word-level splice. Invariant maintained everywhere: bits beyond size_
  // in the final word are zero, so other's words can be OR-merged directly.
  if (other.size_ == 0) return;
  const std::size_t offset = size_ % kWordBits;
  const std::size_t new_size = size_ + other.size_;
  words_.resize((new_size + kWordBits - 1) / kWordBits, 0);
  for (std::size_t i = 0; i < other.words_.size(); ++i) {
    const std::uint64_t w = other.words_[i];
    const std::size_t base = size_ + i * kWordBits;
    const std::size_t wi = base / kWordBits;
    words_[wi] |= w >> offset;
    if (offset != 0 && wi + 1 < words_.size()) {
      words_[wi + 1] |= w << (kWordBits - offset);
    }
  }
  size_ = new_size;
}

BitVector BitVector::inverted() const {
  BitVector out;
  out.assign_inverted(*this);
  return out;
}

void BitVector::assign_inverted(const BitVector& other) {
  words_.resize(other.words_.size());
  size_ = other.size_;
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] = ~other.words_[w];
  // Re-zero the slack beyond size_ to preserve the invariant.
  const std::size_t tail = size_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= ~std::uint64_t{0} << (kWordBits - tail);
  }
}

void BitVector::truncate(std::size_t new_size) noexcept {
  if (new_size >= size_) return;
  size_ = new_size;
  words_.resize((new_size + kWordBits - 1) / kWordBits);
  const std::size_t tail = size_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= ~std::uint64_t{0} << (kWordBits - tail);
  }
}

std::uint64_t BitVector::read_uint(std::size_t offset, std::size_t width) const {
  assert(width <= 64);
  assert(offset + width <= size_);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < width; ++i) value = (value << 1) | (get(offset + i) ? 1u : 0u);
  return value;
}

BitVector BitVector::slice(std::size_t offset, std::size_t count) const {
  assert(offset + count <= size_);
  BitVector out;
  out.size_ = count;
  out.words_.resize((count + kWordBits - 1) / kWordBits, 0);
  const std::size_t shift = offset % kWordBits;
  for (std::size_t w = 0; w < out.words_.size(); ++w) {
    const std::size_t base = offset + w * kWordBits;
    const std::size_t wi = base / kWordBits;
    std::uint64_t word = words_[wi] << shift;
    if (shift != 0 && wi + 1 < words_.size()) {
      word |= words_[wi + 1] >> (kWordBits - shift);
    }
    out.words_[w] = word;
  }
  // Zero the slack beyond count (invariant).
  const std::size_t tail = count % kWordBits;
  if (tail != 0 && !out.words_.empty()) {
    out.words_.back() &= ~std::uint64_t{0} << (kWordBits - tail);
  }
  return out;
}

BitVector BitVector::xor_with(const BitVector& other) const {
  if (size_ != other.size_) throw std::invalid_argument("BitVector::xor_with: size mismatch");
  BitVector out = *this;
  for (std::size_t w = 0; w < words_.size(); ++w) out.words_[w] ^= other.words_[w];
  return out;
}

std::vector<std::uint8_t> BitVector::to_bytes() const {
  std::vector<std::uint8_t> bytes;
  to_bytes_into(bytes);
  return bytes;
}

void BitVector::to_bytes_into(std::vector<std::uint8_t>& out) const {
  out.clear();
  out.resize((size_ + 7) / 8, 0);
  // Bytes never straddle words (8 divides 64), so each is one shift + mask.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::size_t bit = i * 8;
    out[i] = static_cast<std::uint8_t>(words_[bit / kWordBits] >> (56 - bit % kWordBits));
  }
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

std::size_t BitVector::popcount() const noexcept {
  std::size_t count = 0;
  for (const auto word : words_) count += static_cast<std::size_t>(std::popcount(word));
  return count;
}

std::size_t BitVector::hamming_distance(const BitVector& other) const {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector::hamming_distance: size mismatch");
  }
  std::size_t count = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    count += static_cast<std::size_t>(std::popcount(words_[w] ^ other.words_[w]));
  }
  return count;
}

bool BitVector::operator==(const BitVector& other) const noexcept {
  if (size_ != other.size_) return false;
  return words_ == other.words_;
}

}  // namespace jrsnd
