#include "common/cpu_features.hpp"

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace jrsnd {

namespace {

#if defined(__x86_64__) || defined(__i386__)

/// XCR0 via XGETBV: which register state the OS saves across context
/// switches. Bit 1 = SSE (XMM), bit 2 = AVX (YMM), bits 5-7 = AVX-512
/// (opmask, ZMM low, ZMM high).
std::uint64_t xcr0() noexcept {
  std::uint32_t eax = 0;
  std::uint32_t edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

CpuFeatures probe() noexcept {
  CpuFeatures f;
  std::uint32_t eax = 0;
  std::uint32_t ebx = 0;
  std::uint32_t ecx = 0;
  std::uint32_t edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;
  const bool osxsave = (ecx & (1U << 27)) != 0;
  if (!osxsave) return f;  // OS saves no extended state: scalar only

  const std::uint64_t xsave = xcr0();
  const bool ymm_ok = (xsave & 0x6) == 0x6;           // XMM + YMM
  const bool zmm_ok = (xsave & 0xE6) == 0xE6;         // + opmask/ZMM

  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return f;
  const bool cpu_avx2 = (ebx & (1U << 5)) != 0;
  const bool cpu_avx512f = (ebx & (1U << 16)) != 0;
  const bool cpu_vpopcntdq = (ecx & (1U << 14)) != 0;

  f.avx2 = cpu_avx2 && ymm_ok;
  f.avx512_vpopcntdq = cpu_avx512f && cpu_vpopcntdq && zmm_ok;
  return f;
}

#elif defined(__aarch64__)

CpuFeatures probe() noexcept {
  CpuFeatures f;
  f.neon = true;  // Advanced SIMD is architecturally mandatory on AArch64
  return f;
}

#else

CpuFeatures probe() noexcept { return CpuFeatures{}; }

#endif

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = probe();
  return features;
}

}  // namespace jrsnd
