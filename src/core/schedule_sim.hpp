// Event-accurate simulation of the D-NDP buffering/processing schedule
// (paper §V-B and the proof of Theorem 2).
//
// The closed-form latency model (core/latency.hpp) takes the proof's word
// that the four identification residuals are independent uniforms. This
// module does not: it simulates the actual schedule —
//
//   * A broadcasts HELLO copies back to back, copy j spread with code
//     (j mod m), for r rounds;
//   * B runs the paper's duty cycle: during [i t_p, (i+1) t_p) it processes
//     the chips buffered during [i t_p - t_b, i t_p) and buffers those
//     arriving during [(i+1) t_p - t_b, (i+1) t_p), with a random initial
//     phase (nodes are unsynchronized);
//   * B de-spreads the shared-code copy the first time a complete copy lies
//     inside a processed buffer, after the linear scan reaches its chip
//     position;
//   * the CONFIRM path back to A is modelled per the proof (A's residual
//     processing + the bounded scan of the first N chip positions).
//
// sample() returns one identification latency T_i; its average must agree
// with Theorem 2's identification term rho m (3m+4) N^2 l_h / 2 — the test
// and bench/analysis_vs_sim check that it does, validating the uniformity
// assumptions the theorem rests on.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dsss/timing.hpp"

namespace jrsnd::core {

class ScheduleSimulator {
 public:
  explicit ScheduleSimulator(const dsss::TimingModel& timing);

  struct Sample {
    Duration identification;      ///< T_i: A's first chip to A decoding CONFIRM
    Duration hello_despread_at;   ///< when B recovered the HELLO
    std::uint64_t copies_sent;    ///< HELLO copies A transmitted by then
    std::uint64_t windows_scanned;  ///< buffer windows B processed
  };

  /// One simulated identification phase. `shared_code_slot` is the index
  /// (in [0, m)) of the shared code within A's broadcast rotation; the
  /// schedule phases are drawn from `rng`. Returns nullopt only if no
  /// complete copy lands in any buffer within r rounds — which the paper's
  /// choice of r is designed to make impossible (asserted by tests).
  [[nodiscard]] std::optional<Sample> sample(std::uint32_t shared_code_slot, Rng& rng) const;

  /// Convenience: averages `count` samples with random shared-code slots.
  [[nodiscard]] Duration mean_identification(std::size_t count, Rng& rng) const;

 private:
  const dsss::TimingModel& timing_;
};

}  // namespace jrsnd::core
