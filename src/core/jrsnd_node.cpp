#include "core/jrsnd_node.hpp"

#include <algorithm>
#include <stdexcept>

namespace jrsnd::core {

NodeState::NodeState(NodeId id, crypto::IbcPrivateKey key, std::vector<CodeId> codes,
                     const predist::CodePoolAuthority& authority, std::uint32_t gamma, Rng rng)
    : id_(id),
      key_(std::move(key)),
      codes_(std::move(codes)),
      authority_(&authority),
      revocation_(gamma, codes_),
      rng_(rng) {
  std::sort(codes_.begin(), codes_.end());
}

const dsss::SpreadCode& NodeState::code_pattern(CodeId code) const {
  if (!std::binary_search(codes_.begin(), codes_.end(), code)) {
    throw std::invalid_argument("NodeState::code_pattern: code not held");
  }
  return authority_->code(code);
}

BitVector NodeState::make_nonce(std::uint32_t bits) {
  BitVector nonce(bits);
  for (std::uint32_t i = 0; i < bits; ++i) nonce.set(i, rng_.bernoulli(0.5));
  return nonce;
}

void NodeState::add_logical_neighbor(NodeId peer, LogicalNeighbor info) {
  neighbors_[peer] = std::move(info);
}

const LogicalNeighbor* NodeState::neighbor(NodeId peer) const {
  const auto it = neighbors_.find(peer);
  return it == neighbors_.end() ? nullptr : &it->second;
}

std::vector<NodeId> NodeState::logical_neighbors() const {
  std::vector<NodeId> out;
  out.reserve(neighbors_.size());
  for (const auto& [peer, info] : neighbors_) out.push_back(peer);
  std::sort(out.begin(), out.end());
  return out;
}

void NodeState::remove_logical_neighbor(NodeId peer) { neighbors_.erase(peer); }

}  // namespace jrsnd::core
