#include "core/params.hpp"

#include <sstream>

namespace jrsnd::core {

std::string Params::summary() const {
  std::ostringstream os;
  os << "n=" << n << " m=" << m << " l=" << l << " q=" << q << " N=" << N
     << " R=" << R / 1e6 << "Mbps rho=" << rho << " mu=" << mu << " nu=" << nu
     << " z=" << z << " field=" << field_width << "x" << field_height
     << "m range=" << tx_range << "m runs=" << runs;
  return os.str();
}

}  // namespace jrsnd::core
