// The operational loop of a deployed JR-SND network (paper §IV-A, §V-B):
//
//   * in every interval of length T, each node initiates neighbor discovery
//     once, at a uniformly random instant of its own choosing;
//   * a node that hears nothing on a monitored session code for a threshold
//     time assumes the peer moved out of range and stops monitoring it
//     (the logical link expires);
//   * M-NDP initiations follow and patch the pairs D-NDP could not reach.
//
// The runner drives this on the discrete-event queue over a mobility model,
// producing per-epoch reports: how much of the instantaneous physical
// neighborhood is covered by authenticated logical links, how many links
// expired, and what the protocols cost. It is the library-level version of
// what examples/battlefield_patrol.cpp does by hand.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "adversary/jammer.hpp"
#include "core/dndp.hpp"
#include "core/mndp.hpp"
#include "core/params.hpp"
#include "fault/fault_plan.hpp"
#include "sim/event_queue.hpp"
#include "sim/mobility.hpp"

namespace jrsnd::core {

class PeriodicDiscoveryRunner {
 public:
  struct Config {
    Params params;
    Duration interval{30.0};      ///< the paper's discovery interval T
    Duration link_timeout{60.0};  ///< silence threshold before link expiry
    std::uint32_t epochs = 5;
    bool gps_filter = true;
    std::uint64_t seed = 1;
    /// When set, the PHY is wrapped in a FaultyPhy applying this plan; the
    /// event queue's step hook keeps the fault clock (crash windows) in
    /// lockstep with simulated time.
    std::optional<fault::FaultPlan> faults;
  };

  struct EpochReport {
    TimePoint at{};
    std::size_t physical_pairs = 0;
    std::size_t logical_pairs = 0;    ///< physical pairs with a live link
    std::size_t dndp_attempts = 0;
    std::size_t dndp_successes = 0;
    std::size_t links_expired = 0;
    MndpStats mndp;
    double coverage = 0.0;  ///< logical_pairs / physical_pairs
  };

  /// The mobility model must describe config.params.n nodes and outlive
  /// the runner.
  PeriodicDiscoveryRunner(Config config, const sim::MobilityModel& mobility);

  /// Runs config.epochs intervals on the event queue and returns one
  /// report per epoch. Deterministic in config.seed.
  [[nodiscard]] std::vector<EpochReport> run();

 private:
  void expire_links(const sim::Topology& topology, TimePoint now, EpochReport& report);
  void refresh_contacts(const sim::Topology& topology, TimePoint now);

  Config config_;
  const sim::MobilityModel& mobility_;
  Rng root_;
  sim::EventQueue queue_;

  predist::CodePoolAuthority authority_;
  crypto::IbcAuthority ibc_;
  std::unique_ptr<adversary::CompromiseModel> compromise_;
  std::unique_ptr<adversary::Jammer> jammer_;
  std::vector<NodeState> nodes_;

  /// last time each live link's endpoints were physically adjacent,
  /// keyed by (min raw id << 32 | max raw id).
  std::unordered_map<std::uint64_t, TimePoint> last_contact_;
};

}  // namespace jrsnd::core
