// Protocol observability: a PhyModel decorator that records every
// transmission crossing the air — who, to whom, which code class, payload
// size, and whether it survived the jammer. Wraps any PHY (abstract or
// chip-level) without touching the engines; tests assert on exact message
// sequences and examples print human-readable traces of the handshakes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/phy_model.hpp"

namespace jrsnd::core {

struct TxRecord {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  CodeId code = kInvalidCode;  ///< pool code id; kInvalidCode = session code
  TxClass cls = TxClass::Hello;
  std::size_t payload_bits = 0;
  bool delivered = false;
  // Stamped by TracingPhy at capture; appended last so existing
  // aggregate-initialized literals stay valid.
  double t = 0.0;          ///< simulated seconds (set_time), 0 when untimed
  std::uint64_t seq = 0;   ///< 1-based monotonic capture order
  // Causal frame metadata: the span context live on the transmitting thread
  // at capture (obs::current_span()), 0 when no trace/span was active. This
  // is what ties a PHY frame back to the discovery attempt and handshake
  // stage that sent it.
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
};

[[nodiscard]] const char* tx_class_name(TxClass cls) noexcept;

class TracingPhy final : public PhyModel {
 public:
  explicit TracingPhy(PhyModel& inner) : inner_(inner) {}

  void begin_subsession(NodeId a, NodeId b, CodeId code) override {
    inner_.begin_subsession(a, b, code);
  }

  [[nodiscard]] std::optional<BitVector> transmit(NodeId from, NodeId to, TxCode code,
                                                  TxClass cls,
                                                  const BitVector& payload) override;

  [[nodiscard]] const std::vector<TxRecord>& records() const noexcept { return records_; }
  void clear() noexcept { records_.clear(); }

  /// Records matching a class (e.g. all HELLOs).
  [[nodiscard]] std::vector<TxRecord> by_class(TxClass cls) const;

  /// Delivered / total counts.
  [[nodiscard]] std::size_t delivered_count() const noexcept;

  /// Sets the simulated time stamped onto subsequent records. Drivers with a
  /// timeline (event-queue sims) call this as their clock advances.
  void set_time(TimePoint now) noexcept { now_ = now; }
  [[nodiscard]] TimePoint time() const noexcept { return now_; }

  /// Renders the trace as one line per transmission.
  void print(std::ostream& os) const;

  /// Renders the trace as JSONL "phy.tx" events in the obs trace schema
  /// (docs/observability.md): one flat object per line with reserved keys
  /// t/seq/sev/event — the same format `jrsnd report` reads.
  void print_jsonl(std::ostream& os) const;

 private:
  PhyModel& inner_;
  std::vector<TxRecord> records_;
  TimePoint now_ = kSimStart;
  std::uint64_t next_seq_ = 1;
};

}  // namespace jrsnd::core
