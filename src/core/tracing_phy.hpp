// Protocol observability: a PhyModel decorator that records every
// transmission crossing the air — who, to whom, which code class, payload
// size, and whether it survived the jammer. Wraps any PHY (abstract or
// chip-level) without touching the engines; tests assert on exact message
// sequences and examples print human-readable traces of the handshakes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/phy_model.hpp"

namespace jrsnd::core {

struct TxRecord {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  CodeId code = kInvalidCode;  ///< pool code id; kInvalidCode = session code
  TxClass cls = TxClass::Hello;
  std::size_t payload_bits = 0;
  bool delivered = false;
};

[[nodiscard]] const char* tx_class_name(TxClass cls) noexcept;

class TracingPhy final : public PhyModel {
 public:
  explicit TracingPhy(PhyModel& inner) : inner_(inner) {}

  void begin_subsession(NodeId a, NodeId b, CodeId code) override {
    inner_.begin_subsession(a, b, code);
  }

  [[nodiscard]] std::optional<BitVector> transmit(NodeId from, NodeId to, TxCode code,
                                                  TxClass cls,
                                                  const BitVector& payload) override;

  [[nodiscard]] const std::vector<TxRecord>& records() const noexcept { return records_; }
  void clear() noexcept { records_.clear(); }

  /// Records matching a class (e.g. all HELLOs).
  [[nodiscard]] std::vector<TxRecord> by_class(TxClass cls) const;

  /// Delivered / total counts.
  [[nodiscard]] std::size_t delivered_count() const noexcept;

  /// Renders the trace as one line per transmission.
  void print(std::ostream& os) const;

 private:
  PhyModel& inner_;
  std::vector<TxRecord> records_;
};

}  // namespace jrsnd::core
