#include "core/chip_phy.hpp"

#include <algorithm>

#include "dsss/spreader.hpp"
#include "obs/prof/perf_counters.hpp"
#include "obs/span.hpp"

namespace jrsnd::core {

ChipPhy::ChipPhy(const Params& params, const sim::Topology& topology,
                 const adversary::Jammer& jammer, Codebook receiver_codebook, Rng& rng)
    : params_(params),
      topology_(topology),
      jammer_(jammer),
      codebook_(std::move(receiver_codebook)),
      rng_(rng),
      codec_(params.mu) {}

void ChipPhy::begin_subsession(NodeId /*a*/, NodeId /*b*/, CodeId code) {
  hello_jammed_ = jammer_.jams(code, adversary::MessageClass::Hello, rng_);
  followups_jammed_ = jammer_.jams(code, adversary::MessageClass::Followup, rng_);
}

std::optional<BitVector> ChipPhy::transmit(NodeId from, NodeId to, TxCode code, TxClass cls,
                                           const BitVector& payload) {
  BitVector out;
  if (!transmit_into(from, to, code, cls, payload, out)) return std::nullopt;
  return out;
}

bool ChipPhy::transmit_into(NodeId from, NodeId to, TxCode code, TxClass cls,
                            const BitVector& payload, BitVector& out) {
  obs::Span span("phy.transmit");
  JRSND_PERF_REGION("phy.transmit");
  const bool delivered = transmit_pipeline(from, to, code, cls, payload, out);
  span.set_ok(delivered);
  if (!delivered) span.set_loss(obs::peek_loss_reason());
  return delivered;
}

bool ChipPhy::transmit_pipeline(NodeId from, NodeId to, TxCode code, TxClass cls,
                                const BitVector& payload, BitVector& out) {
  if (code.pattern == nullptr) {  // ChipPhy requires chips
    obs::set_loss_reason(obs::LossStage::DecodeFail);
    return false;
  }
  if (!topology_.are_neighbors(from, to)) {
    obs::set_loss_reason(obs::LossStage::OutOfRange);
    return false;
  }
  ++messages_;

  // --- sender: ECC expansion + spreading ---------------------------------
  codec_.encode_into(payload, scratch_.ecc, scratch_.coded);
  const BitVector& coded = scratch_.coded;
  dsss::spread_into(coded, *code.pattern, scratch_.flipped, scratch_.chips);
  const BitVector& chips = scratch_.chips;
  const std::size_t n = code.pattern->length();

  // Place the message at a random offset inside the receiver's buffer
  // window (models the unsynchronized arrival the sliding window handles).
  // Capacity is reserved at the maximum-pad duration so the random pad
  // cannot force a late regrowth of the reused window.
  const std::size_t pad_before = static_cast<std::size_t>(rng_.uniform(2 * n));
  const std::size_t pad_after = n;
  const std::size_t max_duration = (2 * n - 1) + chips.size() + pad_after;
  scratch_.channel.reserve(max_duration);
  scratch_.channel.reset(pad_before + chips.size() + pad_after);
  scratch_.channel.add(pad_before, chips);

  // --- jammer --------------------------------------------------------------
  bool strike = false;
  switch (cls) {
    case TxClass::Hello:
      strike = hello_jammed_;
      break;
    case TxClass::Confirm:
    case TxClass::Auth:
      if (followups_jammed_) {
        strike = true;
        followups_jammed_ = false;  // group budget spent (see AbstractPhy)
      }
      break;
    case TxClass::SessionUnicast:
    case TxClass::SessionHello:
    case TxClass::SessionConfirm:
      strike = jammer_.jams(code.id, adversary::MessageClass::SessionSpread, rng_);
      break;
  }
  if (strike) {
    ++jams_;
    // Two parallel signals on the compromised code: the jammer's chips
    // dominate the victim's and covered bits despread to attacker values.
    // (Jam construction allocates — it is off the clean hot path.)
    for (const dsss::Transmission& tx :
         adversary::make_chip_jamming(*code.pattern, pad_before, coded.size(), jam_coverage_,
                                      /*parallel_signals=*/2, rng_, jam_start_)) {
      scratch_.channel.add(tx);
    }
  }

  // --- receiver -------------------------------------------------------------
  scratch_.received.reserve(max_duration);
  scratch_.channel.receive_into(rng_, scratch_.received);
  const BitVector& received = scratch_.received;

  // HELLOs arrive unannounced: scan with the whole codebook (prepared once
  // by the receiver, ShiftTables cached across transmissions). Every other
  // message is on a code the receiver is actively monitoring — a one-code
  // candidate set refreshed only when the code changes.
  const dsss::PreparedCodebook* candidates = nullptr;
  if (cls == TxClass::Hello) {
    candidates = &codebook_(to);
  } else {
    monitored_.assign_if_changed(std::span<const dsss::SpreadCode>(code.pattern, 1));
    candidates = &monitored_;
  }
  if (candidates->empty()) {
    obs::set_loss_reason(obs::LossStage::DecodeFail);
    return false;
  }

  // A sync position can be a false lock (noise or jammer energy exceeding
  // tau); the ECC decode is the arbiter, and on rejection the receiver
  // resumes scanning one chip later — the standard recover-and-rescan loop.
  // The cached tables make each rescan iteration pure scanning work.
  obs::Span scan_span("dsss.scan");
  JRSND_PERF_REGION("dsss.scan");
  std::uint64_t rescans = 0;
  std::size_t offset = 0;
  while (true) {
    if (!dsss::find_first_message_into(received, *candidates, coded.size(), params_.tau, offset,
                                       scratch_.hit)) {
      // A strike explains the miss; otherwise the channel noise defeated
      // sync/decode on its own.
      obs::set_loss_reason(strike ? obs::LossStage::Jammed : obs::LossStage::DecodeFail);
      scan_span.set_ok(false);
      scan_span.set_loss(strike ? obs::LossStage::Jammed : obs::LossStage::DecodeFail);
      scan_span.with_u64("rescans", rescans);
      return false;
    }
    bool decoded = false;
    {
      obs::Span decode_span("ecc.decode");
      JRSND_PERF_REGION("ecc.rs.decode");
      decoded = codec_.decode_into(scratch_.hit.message.bits, payload.size(),
                                   std::span<const std::size_t>(scratch_.hit.message.erased_bits),
                                   scratch_.ecc, out);
      decode_span.set_ok(decoded);
      if (!decoded) decode_span.set_loss(obs::LossStage::DecodeFail);
    }
    if (decoded) {
      scan_span.with_u64("rescans", rescans);
      return true;
    }
    ++rescans;
    offset = scratch_.hit.chip_offset + 1;
  }
}

}  // namespace jrsnd::core
