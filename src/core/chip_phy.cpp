#include "core/chip_phy.hpp"

#include <algorithm>

#include "dsss/chip_channel.hpp"
#include "dsss/sliding_window.hpp"
#include "dsss/spreader.hpp"

namespace jrsnd::core {

ChipPhy::ChipPhy(const Params& params, const sim::Topology& topology,
                 const adversary::Jammer& jammer, Codebook receiver_codebook, Rng& rng)
    : params_(params),
      topology_(topology),
      jammer_(jammer),
      codebook_(std::move(receiver_codebook)),
      rng_(rng),
      codec_(params.mu) {}

void ChipPhy::begin_subsession(NodeId /*a*/, NodeId /*b*/, CodeId code) {
  hello_jammed_ = jammer_.jams(code, adversary::MessageClass::Hello, rng_);
  followups_jammed_ = jammer_.jams(code, adversary::MessageClass::Followup, rng_);
}

std::optional<BitVector> ChipPhy::transmit(NodeId from, NodeId to, TxCode code, TxClass cls,
                                           const BitVector& payload) {
  if (code.pattern == nullptr) return std::nullopt;  // ChipPhy requires chips
  if (!topology_.are_neighbors(from, to)) return std::nullopt;
  ++messages_;

  // --- sender: ECC expansion + spreading ---------------------------------
  const BitVector coded = codec_.encode(payload);
  const BitVector chips = dsss::spread(coded, *code.pattern);
  const std::size_t n = code.pattern->length();

  // Place the message at a random offset inside the receiver's buffer
  // window (models the unsynchronized arrival the sliding window handles).
  const std::size_t pad_before = static_cast<std::size_t>(rng_.uniform(2 * n));
  const std::size_t pad_after = n;
  dsss::ChipChannel channel(pad_before + chips.size() + pad_after);
  channel.add(dsss::Transmission{pad_before, chips});

  // --- jammer --------------------------------------------------------------
  bool strike = false;
  switch (cls) {
    case TxClass::Hello:
      strike = hello_jammed_;
      break;
    case TxClass::Confirm:
    case TxClass::Auth:
      if (followups_jammed_) {
        strike = true;
        followups_jammed_ = false;  // group budget spent (see AbstractPhy)
      }
      break;
    case TxClass::SessionUnicast:
    case TxClass::SessionHello:
    case TxClass::SessionConfirm:
      strike = jammer_.jams(code.id, adversary::MessageClass::SessionSpread, rng_);
      break;
  }
  if (strike) {
    ++jams_;
    // Two parallel signals on the compromised code: the jammer's chips
    // dominate the victim's and covered bits despread to attacker values.
    for (const dsss::Transmission& tx :
         adversary::make_chip_jamming(*code.pattern, pad_before, coded.size(), jam_coverage_,
                                      /*parallel_signals=*/2, rng_, jam_start_)) {
      channel.add(tx);
    }
  }

  // --- receiver -------------------------------------------------------------
  const BitVector received = channel.receive(rng_);

  // HELLOs arrive unannounced: scan with the whole codebook. Every other
  // message is on a code the receiver is actively monitoring.
  std::vector<dsss::SpreadCode> candidates;
  if (cls == TxClass::Hello) {
    candidates = codebook_(to);
  } else {
    candidates.push_back(*code.pattern);
  }
  if (candidates.empty()) return std::nullopt;

  // A sync position can be a false lock (noise or jammer energy exceeding
  // tau); the ECC decode is the arbiter, and on rejection the receiver
  // resumes scanning one chip later — the standard recover-and-rescan loop.
  std::size_t offset = 0;
  while (true) {
    const auto hit =
        dsss::find_first_message(received, candidates, coded.size(), params_.tau, offset);
    if (!hit.has_value()) return std::nullopt;
    const auto decoded =
        codec_.decode(hit->message.bits, payload.size(),
                      std::span<const std::size_t>(hit->message.erased_bits));
    if (decoded.has_value()) return decoded;
    offset = hit->chip_offset + 1;
  }
}

}  // namespace jrsnd::core
