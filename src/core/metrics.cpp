#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace jrsnd::core {

void Stat::add(double sample) noexcept {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double Stat::mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }

double Stat::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Stat::stddev() const noexcept { return std::sqrt(variance()); }

double Stat::ci95() const noexcept {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

Table::Table(std::vector<std::string> headers, int column_width)
    : headers_(std::move(headers)), width_(column_width) {}

void Table::add_row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

void Table::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (const double v : cells) row.push_back(fmt(v, precision));
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (const std::string& cell : cells) os << std::setw(width_) << cell << "  ";
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  rule.resize(headers_.size() * static_cast<std::size_t>(width_ + 2), '-');
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ',';
      const std::string& cell = cells[i];
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (const char c : cell) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace jrsnd::core
