// Wire formats of every JR-SND message (paper §V-B, §V-C).
//
// Messages are bit-granular: field widths come from Table I (l_t-bit type,
// l_id-bit node ID, l_n-bit nonce, l_mac-bit MAC, l_nu-bit hop limit,
// l_sig-bit ID-based signature). Each struct encodes to / decodes from a
// BitVector — the exact payload that is then ECC-expanded and spread. The
// cryptographic tags we compute are 256 bits; on the wire they occupy the
// paper's l_mac / l_sig widths (truncated MAC, zero-padded signature) so
// that transmission-time accounting matches the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bit_vector.hpp"
#include "common/types.hpp"
#include "crypto/ibc.hpp"

namespace jrsnd::core {

/// Field widths, from Params (see params.hpp).
struct WireConfig {
  std::uint32_t l_t = 5;
  std::uint32_t l_id = 16;
  std::uint32_t l_n = 20;
  std::uint32_t l_mac = 160;
  std::uint32_t l_nu = 4;
  std::uint32_t l_sig = 672;
};

enum class MessageType : std::uint8_t {
  Hello = 1,
  Confirm = 2,
  Auth = 3,
  MndpRequest = 4,
  MndpResponse = 5,
  MndpHello = 6,
  MndpConfirm = 7,
};

/// Reads the l_t-bit type tag without decoding the rest.
[[nodiscard]] std::optional<MessageType> peek_type(const BitVector& bits, const WireConfig& cfg);

// --- D-NDP messages -------------------------------------------------------

/// {HELLO, ID_A}: broadcast by the initiator under each of its m codes.
struct HelloMessage {
  NodeId sender = kInvalidNode;

  [[nodiscard]] BitVector encode(const WireConfig& cfg) const;
  [[nodiscard]] static std::optional<HelloMessage> decode(const BitVector& bits,
                                                          const WireConfig& cfg);
  [[nodiscard]] static std::size_t payload_bits(const WireConfig& cfg) {
    return cfg.l_t + cfg.l_id;
  }
};

/// {CONFIRM, ID_B}: the responder's reply under the shared code.
struct ConfirmMessage {
  NodeId sender = kInvalidNode;

  [[nodiscard]] BitVector encode(const WireConfig& cfg) const;
  [[nodiscard]] static std::optional<ConfirmMessage> decode(const BitVector& bits,
                                                            const WireConfig& cfg);
  [[nodiscard]] static std::size_t payload_bits(const WireConfig& cfg) {
    return cfg.l_t + cfg.l_id;
  }
};

/// {ID, n, f_K(ID | n)}: both authentication messages have this shape.
struct AuthMessage {
  NodeId sender = kInvalidNode;
  BitVector nonce;           ///< l_n bits
  crypto::Sha256Digest mac{};  ///< truncated to l_mac bits on the wire

  /// Computes the MAC f_K(ID | nonce) and assembles the message.
  [[nodiscard]] static AuthMessage make(NodeId sender, BitVector nonce,
                                        const crypto::SymmetricKey& key, const WireConfig& cfg);

  /// Recomputes the MAC under `key` and compares with the received one
  /// (over the l_mac wire bits).
  [[nodiscard]] bool verify(const crypto::SymmetricKey& key, const WireConfig& cfg) const;

  [[nodiscard]] BitVector encode(const WireConfig& cfg) const;
  [[nodiscard]] static std::optional<AuthMessage> decode(const BitVector& bits,
                                                         const WireConfig& cfg);
  [[nodiscard]] static std::size_t payload_bits(const WireConfig& cfg) {
    return cfg.l_t + cfg.l_id + cfg.l_n + cfg.l_mac;
  }

 private:
  [[nodiscard]] static std::vector<std::uint8_t> mac_input(NodeId sender,
                                                           const BitVector& nonce);
};

// --- M-NDP messages --------------------------------------------------------

/// One forwarding hop's contribution: its ID, logical neighbor list, and
/// signature over everything that preceded it in the message.
struct HopRecord {
  NodeId id = kInvalidNode;
  std::vector<NodeId> neighbors;
  crypto::IbcSignature signature{};
};

/// {ID_A, L_A, n_A, nu, SIG_A, (ID_C, L_C, SIG_C), ...}: the source's signed
/// request, extended hop by hop.
struct MndpRequest {
  NodeId source = kInvalidNode;
  std::vector<NodeId> source_neighbors;
  BitVector nonce;  ///< l_n bits
  std::uint32_t nu = 2;
  crypto::IbcSignature source_signature{};
  std::vector<HopRecord> hops;  ///< forwarders, in path order (excludes source)

  /// Bytes the source signs: (ID_A, L_A, n_A, nu).
  [[nodiscard]] std::vector<std::uint8_t> source_sign_input(const WireConfig& cfg) const;
  /// Bytes hop `index` signs: the source block plus hops[0..index].id/list.
  [[nodiscard]] std::vector<std::uint8_t> hop_sign_input(std::size_t index,
                                                         const WireConfig& cfg) const;

  /// Number of hops the request has traversed so far (= hops.size() + 1 for
  /// the link it is about to cross).
  [[nodiscard]] std::uint32_t hops_traversed() const noexcept {
    return static_cast<std::uint32_t>(hops.size()) + 1;
  }

  [[nodiscard]] BitVector encode(const WireConfig& cfg) const;
  [[nodiscard]] static std::optional<MndpRequest> decode(const BitVector& bits,
                                                         const WireConfig& cfg);
  [[nodiscard]] std::size_t payload_bits(const WireConfig& cfg) const;
};

/// {ID_A, ID_C, ID_B, L_B, n_B, nu, SIG_B, (L_C, SIG_C), ...}: the
/// destination's signed response, extended along the reverse path.
struct MndpResponse {
  NodeId source = kInvalidNode;       ///< ID_A: the original initiator
  NodeId via = kInvalidNode;          ///< ID_C: the neighbor B replies through
  NodeId responder = kInvalidNode;    ///< ID_B
  std::vector<NodeId> responder_neighbors;
  BitVector nonce;  ///< n_B, l_n bits
  std::uint32_t nu = 2;
  crypto::IbcSignature responder_signature{};
  std::vector<HopRecord> hops;  ///< reverse-path forwarders

  [[nodiscard]] std::vector<std::uint8_t> responder_sign_input(const WireConfig& cfg) const;
  [[nodiscard]] std::vector<std::uint8_t> hop_sign_input(std::size_t index,
                                                         const WireConfig& cfg) const;

  [[nodiscard]] BitVector encode(const WireConfig& cfg) const;
  [[nodiscard]] static std::optional<MndpResponse> decode(const BitVector& bits,
                                                          const WireConfig& cfg);
  [[nodiscard]] std::size_t payload_bits(const WireConfig& cfg) const;
};

// --- helpers ----------------------------------------------------------------

/// Truncates a 256-bit digest to the l_mac wire width for comparison.
[[nodiscard]] BitVector truncate_digest(const crypto::Sha256Digest& digest, std::uint32_t bits);

}  // namespace jrsnd::core
