// Handshake hardening: per-stage timeout, bounded retransmission, and seeded
// exponential backoff with jitter.
//
// The paper's evaluation (§VI) treats a D-NDP handshake as one-shot: a single
// jammed or dropped message kills the pair. AntiJam-style backoff discipline
// (PAPERS.md) is what turns adversarial loss into graceful degradation, so the
// hardened engines wrap every message exchange in a RetryState — and the
// four-message D-NDP exchange in a HandshakeStateMachine that walks
// Hello -> Confirm -> Auth1 -> Auth2 with a fresh retry budget per stage.
//
// Everything here is deterministic: backoff jitter draws from the Rng the
// caller seeds, and a disabled policy (max_retx == 0, the default) makes no
// draws at all — the engines behave bit-identically to the unhardened code.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/messages.hpp"
#include "crypto/verify_queue.hpp"

namespace jrsnd::core {

/// Retry/timeout/backoff knobs for one protocol message stage. The default
/// (max_retx == 0) reproduces the paper's one-shot semantics exactly.
struct RetryPolicy {
  std::uint32_t max_retx = 0;    ///< retransmissions allowed beyond the first send
  double timeout_s = 0.05;       ///< per-attempt response timeout (nominal clock)
  double backoff_base_s = 0.02;  ///< backoff before the first retransmission
  double backoff_factor = 2.0;   ///< exponential growth per retransmission
  double backoff_max_s = 1.0;    ///< backoff cap
  double jitter = 0.1;           ///< +- fraction randomizing each backoff

  [[nodiscard]] bool enabled() const noexcept { return max_retx > 0; }

  /// Nominal (jitter-free) backoff before retransmission `retx` (1-based).
  [[nodiscard]] double nominal_backoff_s(std::uint32_t retx) const noexcept;
};

/// Maps a node to its local clock rate (1.0 = nominal). Implemented by the
/// fault layer's ClockModel; a drifting clock mis-measures its timeouts.
class HandshakeClock {
 public:
  virtual ~HandshakeClock() = default;
  [[nodiscard]] virtual double rate(NodeId node) const = 0;
};

/// Retry bookkeeping for one message stage. Invariants (pinned by the
/// property suite in tests/core_handshake_retry_test.cpp):
///   * retransmissions() <= policy.max_retx, always;
///   * nominal backoff is monotone non-decreasing and capped, and the
///     jittered value stays within [1-jitter, 1+jitter] x nominal;
///   * after on_delivered(), on_timeout() returns nullopt and draws nothing.
class RetryState {
 public:
  RetryState(const RetryPolicy& policy, Rng& rng) noexcept
      : policy_(&policy), rng_(&rng) {}

  /// Records a transmission attempt (first send and every retransmission).
  void on_send() noexcept;

  /// The attempt's response arrived; the stage is complete.
  void on_delivered() noexcept { completed_ = true; }

  /// The attempt's timeout expired. Returns the backoff to wait before the
  /// next retransmission, or nullopt when the stage is complete, the budget
  /// is exhausted, or the policy is disabled. Draws jitter only when a
  /// retransmission is actually granted.
  [[nodiscard]] std::optional<Duration> on_timeout();

  [[nodiscard]] std::uint32_t attempts() const noexcept { return attempts_; }
  [[nodiscard]] std::uint32_t retransmissions() const noexcept {
    return attempts_ > 0 ? attempts_ - 1 : 0;
  }
  [[nodiscard]] bool completed() const noexcept { return completed_; }
  [[nodiscard]] bool exhausted() const noexcept { return exhausted_; }

 private:
  const RetryPolicy* policy_;
  Rng* rng_;
  std::uint32_t attempts_ = 0;
  bool completed_ = false;
  bool exhausted_ = false;
};

/// The four paper-faithful D-NDP stages plus the two terminal states.
enum class HandshakeStage : std::uint8_t { Hello, Confirm, Auth1, Auth2, Done, Failed };

[[nodiscard]] const char* handshake_stage_name(HandshakeStage stage) noexcept;

/// Per-pair (per-sub-session) handshake driver: one RetryState per stage,
/// stages advance on delivery, any exhausted stage fails the whole
/// handshake. Also accounts the virtual time the retry discipline costs
/// (timeouts measured on the initiator's possibly-drifting clock, plus
/// backoffs), which the latency model can fold in.
class HandshakeStateMachine {
 public:
  /// `clock_rate` scales perceived timeouts (fault-layer clock drift).
  HandshakeStateMachine(const RetryPolicy& policy, Rng& rng,
                        double clock_rate = 1.0) noexcept;

  [[nodiscard]] HandshakeStage stage() const noexcept { return stage_; }
  [[nodiscard]] bool done() const noexcept { return stage_ == HandshakeStage::Done; }
  [[nodiscard]] bool failed() const noexcept { return stage_ == HandshakeStage::Failed; }
  [[nodiscard]] bool terminal() const noexcept { return done() || failed(); }

  /// Records a send of the current stage's message. No-op once terminal.
  void on_send() noexcept;

  /// Current stage delivered; advances to the next stage (or Done).
  void on_delivered() noexcept;

  /// Current attempt timed out. Returns the backoff granted before the next
  /// retransmission; nullopt transitions the machine to Failed (budget
  /// exhausted) or reports an already-terminal machine without drawing.
  [[nodiscard]] std::optional<Duration> on_timeout();

  /// Total retransmissions across completed and current stages.
  [[nodiscard]] std::uint32_t retransmissions() const noexcept {
    return total_retransmissions_;
  }
  /// Timeouts that expired (each failed attempt costs one).
  [[nodiscard]] std::uint32_t timeouts() const noexcept { return timeouts_; }
  /// Virtual time spent waiting: expired timeouts (local clock) + backoffs.
  [[nodiscard]] Duration elapsed() const noexcept { return elapsed_; }

 private:
  RetryPolicy policy_;
  Rng* rng_;
  double clock_rate_;
  HandshakeStage stage_ = HandshakeStage::Hello;
  RetryState retry_;
  std::uint32_t total_retransmissions_ = 0;
  std::uint32_t timeouts_ = 0;
  Duration elapsed_{0.0};
};

/// Verdict of the staged AUTH-frame verification. `sender` is the claimed ID
/// (valid once the frame parsed, i.e. from RejectCode onward); `nonce` and
/// `key` are populated only on Accept — exactly what the engine needs to
/// build the reply MAC and derive the session code.
struct AuthVerdict {
  crypto::VerifyStage stage = crypto::VerifyStage::RejectLength;
  NodeId sender = kInvalidNode;
  BitVector nonce;             ///< l_n bits, Accept only
  crypto::SymmetricKey key{};  ///< pairwise key the MAC verified under, Accept only

  [[nodiscard]] bool accepted() const noexcept {
    return stage == crypto::VerifyStage::Accept;
  }
  /// True when the frame survived the cheap stages but its MAC failed — the
  /// only reject the engine attributes to tampering (mac_failure).
  [[nodiscard]] bool mac_rejected() const noexcept {
    return stage == crypto::VerifyStage::RejectMac;
  }
};

/// The early-reject verification front-end of the D-NDP engine: a
/// crypto::VerifyQueue bound to the IBC pairwise-key source, ordering every
/// check cheapest-first (length -> format -> session-code -> MAC) and caching
/// per-peer HMAC key schedules across calls. Accept/reject decisions are
/// bit-identical to the historical AuthMessage::decode + verify path (pinned
/// by tests/crypto_verify_queue_test.cpp and bench/dos_throughput).
class HandshakeVerifier {
 public:
  explicit HandshakeVerifier(const WireConfig& wire);

  /// Verifies one received AUTH frame claimed to arrive on `frame_code`
  /// while the receiver listens on `expected_code`, under `receiver`'s IBC
  /// key. Allocation-free on every reject path once the peer cache is warm.
  [[nodiscard]] AuthVerdict verify_auth(const BitVector& frame, CodeId frame_code,
                                        CodeId expected_code,
                                        const crypto::IbcPrivateKey& receiver);

  /// Batched form for flood scenarios: verifies `frames` (all on the same
  /// code pair) in one drain, one VerifyResult per frame into `out`.
  /// Returns the number accepted.
  std::size_t verify_auth_batch(std::span<const BitVector> frames, CodeId frame_code,
                                CodeId expected_code,
                                const crypto::IbcPrivateKey& receiver,
                                std::vector<crypto::VerifyResult>& out);

  [[nodiscard]] const crypto::VerifyQueue& queue() const noexcept { return queue_; }

 private:
  /// Pairwise-key source over the receiver's IBC private key. The cache key
  /// packs the unordered {receiver, sender} pair, which is exactly what the
  /// symmetric shared_key depends on — so one engine's cache is shared
  /// between both handshake directions.
  struct PairSource final : public crypto::KeySource {
    const crypto::IbcPrivateKey* receiver = nullptr;

    [[nodiscard]] std::uint64_t cache_key(std::uint32_t sender) const noexcept override;
    [[nodiscard]] crypto::SymmetricKey key_for(std::uint32_t sender) const override;
  };

  crypto::VerifyQueue queue_;
  PairSource source_;
};

}  // namespace jrsnd::core
