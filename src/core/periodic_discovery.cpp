#include "core/periodic_discovery.hpp"

#include <algorithm>

#include "core/abstract_phy.hpp"
#include "fault/faulty_phy.hpp"
#include "obs/event_log.hpp"
#include "obs/span.hpp"
#include "sim/topology.hpp"

namespace jrsnd::core {

namespace {

std::uint64_t pair_key(NodeId a, NodeId b) {
  const std::uint64_t lo = std::min(raw(a), raw(b));
  const std::uint64_t hi = std::max(raw(a), raw(b));
  return (lo << 32) | hi;
}

}  // namespace

PeriodicDiscoveryRunner::PeriodicDiscoveryRunner(Config config,
                                                 const sim::MobilityModel& mobility)
    : config_(std::move(config)),
      mobility_(mobility),
      root_(config_.seed),
      authority_(config_.params.predist(), root_.split()),
      ibc_(root_.next()) {
  Rng adv = root_.split();
  compromise_ = std::make_unique<adversary::CompromiseModel>(authority_.assignment(),
                                                             config_.params.q, adv);
  jammer_ = std::make_unique<adversary::ReactiveJammer>(
      *compromise_, adversary::JammerParams{config_.params.z, config_.params.mu});

  Rng node_rng = root_.split();
  nodes_.reserve(config_.params.n);
  for (std::uint32_t i = 0; i < config_.params.n; ++i) {
    const NodeId id = node_id(i);
    nodes_.emplace_back(id, ibc_.issue(id), authority_.assignment().codes_of(id), authority_,
                        config_.params.gamma, node_rng.split());
  }
}

void PeriodicDiscoveryRunner::refresh_contacts(const sim::Topology& topology, TimePoint now) {
  for (const auto& [a, b] : topology.pairs()) {
    if (nodes_[raw(a)].knows(b) && nodes_[raw(b)].knows(a)) {
      last_contact_[pair_key(a, b)] = now;
    }
  }
}

void PeriodicDiscoveryRunner::expire_links(const sim::Topology& topology, TimePoint now,
                                           EpochReport& report) {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const NodeId a = node_id(i);
    for (const NodeId b : nodes_[i].logical_neighbors()) {
      if (raw(b) <= i) continue;  // handle each pair once
      if (topology.are_neighbors(a, b)) continue;  // still in contact
      const auto it = last_contact_.find(pair_key(a, b));
      const TimePoint last = it == last_contact_.end() ? now : it->second;
      // Strictly greater: a link whose silence equals the threshold exactly
      // is still live this tick, so a same-tick rediscovery cannot count the
      // pair as both expired and discovered in one epoch report.
      if (now - last > config_.link_timeout) {
        nodes_[raw(a)].remove_logical_neighbor(b);
        nodes_[raw(b)].remove_logical_neighbor(a);
        last_contact_.erase(pair_key(a, b));
        ++report.links_expired;
      }
    }
  }
}

std::vector<PeriodicDiscoveryRunner::EpochReport> PeriodicDiscoveryRunner::run() {
  std::vector<EpochReport> reports;
  const sim::Field field(config_.params.field_width, config_.params.field_height);
  Rng schedule_rng = root_.split();
  Rng phy_rng = root_.split();

  for (std::uint32_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const TimePoint start{static_cast<double>(epoch) * config_.interval.seconds()};
    const sim::Topology topology(field, mobility_.snapshot(start), config_.params.tx_range);

    // Epoch span: a detached (trace-0) structural span so stage tables show
    // per-epoch timing without the epoch itself counting as an attempt. All
    // of the epoch's trace events stamp the epoch start time.
    const obs::ScopedSimTime epoch_time(start.seconds());
    obs::Span epoch_span("periodic.epoch");
    epoch_span.with_u64("epoch", epoch);

    EpochReport report;
    report.at = start;
    report.physical_pairs = topology.pairs().size();

    expire_links(topology, start, report);
    refresh_contacts(topology, start);

    AbstractPhy phy(topology, *jammer_, phy_rng);

    // Optional fault layer: the queue's step hook keeps its clock (and so
    // the crash schedule) in lockstep with simulated time for this epoch.
    std::optional<fault::FaultyPhy> faulty;
    PhyModel* active_phy = &phy;
    const HandshakeClock* hs_clock = nullptr;
    if (config_.faults.has_value()) {
      faulty.emplace(phy, *config_.faults, config_.seed + epoch);
      faulty->set_now(start);
      active_phy = &*faulty;
      hs_clock = &faulty->clocks();
      queue_.set_step_hook([f = &*faulty](TimePoint t) { f->set_now(t); });
    }

    DndpEngine dndp(config_.params, *active_phy, /*redundancy=*/true,
                    config_.seed + epoch, hs_clock);
    MndpEngine mndp(config_.params, *active_phy, topology, ibc_.oracle(),
                    config_.gps_filter, config_.seed + epoch);

    // Each node initiates D-NDP once, at a random instant of the interval
    // (paper §V-B); M-NDP initiations ride the interval's fresh links, so
    // they are drawn from its final fifth.
    const double T = config_.interval.seconds();
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      const TimePoint dndp_at = start + Duration(schedule_rng.uniform_real(0.0, 0.8 * T));
      queue_.schedule_at(dndp_at, [this, i, &topology, &dndp, &report] {
        NodeState& initiator = nodes_[i];
        for (const NodeId peer : topology.neighbors(initiator.id())) {
          if (initiator.knows(peer)) continue;
          ++report.dndp_attempts;
          if (dndp.run(initiator, nodes_[raw(peer)]).discovered) ++report.dndp_successes;
        }
      });

      const TimePoint mndp_at = start + Duration(schedule_rng.uniform_real(0.8 * T, T));
      queue_.schedule_at(mndp_at, [this, i, &mndp, &report] {
        const MndpStats stats =
            mndp.initiate(nodes_[i], std::span<NodeState>(nodes_));
        report.mndp.requests_sent += stats.requests_sent;
        report.mndp.responses_sent += stats.responses_sent;
        report.mndp.signature_verifications += stats.signature_verifications;
        report.mndp.signatures_created += stats.signatures_created;
        report.mndp.requests_dropped += stats.requests_dropped;
        report.mndp.discoveries += stats.discoveries;
        report.mndp.false_positive_responses += stats.false_positive_responses;
        report.mndp.max_hops_seen = std::max(report.mndp.max_hops_seen, stats.max_hops_seen);
        report.mndp.retransmissions += stats.retransmissions;
        report.mndp.timeouts += stats.timeouts;
      });
    }

    queue_.run_until(start + config_.interval);
    // The fault layer (if any) dies with this epoch; drop the hook first.
    if (faulty.has_value()) queue_.set_step_hook(nullptr);

    for (const auto& [a, b] : topology.pairs()) {
      report.logical_pairs += nodes_[raw(a)].knows(b) && nodes_[raw(b)].knows(a);
    }
    report.coverage = report.physical_pairs == 0
                          ? 1.0
                          : static_cast<double>(report.logical_pairs) /
                                static_cast<double>(report.physical_pairs);
    epoch_span.with_u64("pairs", report.physical_pairs);
    epoch_span.set_dur(config_.interval.seconds());
    reports.push_back(report);
  }
  return reports;
}

}  // namespace jrsnd::core
