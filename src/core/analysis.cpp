#include "core/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"
#include "sim/field.hpp"

namespace jrsnd::core {

double pr_shared_codes(const Params& p, std::uint32_t x) {
  return jrsnd::pr_shared_codes(p.m, x, p.n, p.l);
}

double pr_share_at_least_one(const Params& p) { return 1.0 - pr_shared_codes(p, 0); }

double alpha(const Params& p) { return code_compromise_probability(p.n, p.l, p.q); }

double expected_compromised_codes(const Params& p) {
  return static_cast<double>(p.pool_size()) * alpha(p);
}

Theorem1Result theorem1(const Params& p) {
  Theorem1Result r;
  r.alpha = alpha(p);
  r.c = expected_compromised_codes(p);
  if (r.c > 0.0) {
    const double tries = static_cast<double>(p.z) * (1.0 + p.mu) / p.mu;
    r.beta = clamp01(tries / r.c);
    r.beta_prime = clamp01(3.0 * tries / r.c);
  }
  const double jam_one = r.beta + r.beta_prime - r.beta * r.beta_prime;

  double fail_lower = 0.0;  // sum Pr[x] alpha^x           (reactive)
  double fail_upper = 0.0;  // sum Pr[x] (alpha * jam_one)^x (random)
  for (std::uint32_t x = 0; x <= p.m; ++x) {
    const double pr = pr_shared_codes(p, x);
    fail_lower += pr * std::pow(r.alpha, x);
    fail_upper += pr * std::pow(r.alpha * jam_one, x);
  }
  r.p_lower = clamp01(1.0 - fail_lower);
  r.p_upper = clamp01(1.0 - fail_upper);
  return r;
}

double theorem2_dndp_latency(const Params& p) {
  const double m = p.m;
  const double n2 = static_cast<double>(p.N) * static_cast<double>(p.N);
  // The identification phase is linear in lambda, which k receive chains
  // divide by k (multi-antenna extension; k = 1 reproduces the paper).
  const double t_identify = p.rho * m * (3.0 * m + 4.0) * n2 * p.l_h() /
                            (2.0 * static_cast<double>(p.rx_chains));
  const double t_auth = 2.0 * static_cast<double>(p.N) * p.l_f() / p.R + 2.0 * p.t_key;
  return t_identify + t_auth;
}

double theorem3_mndp_probability(double p_d, double g) {
  const double common = g * sim::common_neighbor_fraction() - 1.0;
  if (common <= 0.0) return 0.0;
  return clamp01(1.0 - std::pow(1.0 - p_d * p_d, common));
}

double mndp_probability_recursive(double p_d, double g, std::uint32_t nu) {
  const double common = g * sim::common_neighbor_fraction() - 1.0;
  if (common <= 0.0 || nu < 2) return 0.0;
  double reach = p_d;  // r_1
  double m = 0.0;
  for (std::uint32_t k = 2; k <= nu; ++k) {
    m = clamp01(1.0 - std::pow(1.0 - reach * p_d, common));
    reach = clamp01(1.0 - (1.0 - p_d) * (1.0 - m));
  }
  return m;
}

double theorem4_mndp_latency(const Params& p, double g) {
  const double nu = p.nu;
  const double t_nu =
      static_cast<double>(p.N) / p.R *
      (3.0 * nu * (nu + 1.0) / 2.0 * ((g + 1.0) * p.l_id + 2.0 * p.l_sig) +
       2.0 * nu * (p.l_n + p.l_nu));
  return t_nu + 2.0 * nu * (nu + 1.0) * p.t_ver + 2.0 * nu * p.t_sig;
}

double jrsnd_probability(double p_d, double p_m) { return clamp01(p_d + (1.0 - p_d) * p_m); }

double jrsnd_latency(double t_d, double t_m) { return std::max(t_d, t_m); }

double expected_degree(const Params& p) {
  const double area = p.field_width * p.field_height;
  return static_cast<double>(p.n - 1) * M_PI * p.tx_range * p.tx_range / area;
}

}  // namespace jrsnd::core
