#include "core/abstract_phy.hpp"

#include "obs/metrics_registry.hpp"
#include "obs/span.hpp"

namespace jrsnd::core {

AbstractPhy::AbstractPhy(const sim::Topology& topology, const adversary::Jammer& jammer,
                         Rng& rng)
    : topology_(topology), jammer_(jammer), rng_(rng) {}

void AbstractPhy::begin_subsession(NodeId /*a*/, NodeId /*b*/, CodeId code) {
  // One draw per sub-session: the HELLO fate and the follow-up-group fate.
  hello_jammed_ = jammer_.jams(code, adversary::MessageClass::Hello, rng_);
  followups_jammed_ = jammer_.jams(code, adversary::MessageClass::Followup, rng_);
}

std::optional<BitVector> AbstractPhy::transmit(NodeId from, NodeId to, TxCode code, TxClass cls,
                                               const BitVector& payload) {
  JRSND_COUNT("phy.tx.total");
  if (!topology_.are_neighbors(from, to)) {
    ++out_of_range_;
    JRSND_COUNT("phy.tx.out_of_range");
    obs::set_loss_reason(obs::LossStage::OutOfRange);
    return std::nullopt;
  }

  bool is_jammed = false;
  switch (cls) {
    case TxClass::Hello:
      is_jammed = hello_jammed_;
      break;
    case TxClass::Confirm:
    case TxClass::Auth:
      // The whole follow-up trio shares one group-level jam event; charging
      // it to the first lost message suffices, since one jammed message
      // fails the sub-session either way.
      if (followups_jammed_) {
        is_jammed = true;
        followups_jammed_ = false;  // the group's jam budget is spent
      }
      break;
    case TxClass::SessionUnicast:
    case TxClass::SessionHello:
    case TxClass::SessionConfirm:
      // Fresh N-bit session codes are secret; the computationally bounded
      // jammer cannot guess them (paper §IV-B).
      is_jammed = jammer_.jams(code.id, adversary::MessageClass::SessionSpread, rng_);
      break;
  }

  if (is_jammed) {
    ++jammed_;
    JRSND_COUNT("phy.tx.jammed");
    obs::set_loss_reason(obs::LossStage::Jammed);
    return std::nullopt;
  }
  ++delivered_;
  JRSND_COUNT("phy.tx.delivered");
  return payload;
}

}  // namespace jrsnd::core
