#include "core/secure_channel.hpp"

#include <stdexcept>

namespace jrsnd::core {

namespace {

std::string direction_label(NodeId from, NodeId to) {
  return std::to_string(raw(from)) + "->" + std::to_string(raw(to));
}

const LogicalNeighbor& require_link(NodeState& self, NodeId peer) {
  const LogicalNeighbor* link = self.neighbor(peer);
  if (link == nullptr) {
    throw std::invalid_argument("SecureChannel: nodes have not discovered each other");
  }
  return *link;
}

}  // namespace

SecureChannel::SecureChannel(NodeState& a, NodeState& b, PhyModel& phy)
    : phy_(phy),
      session_pattern_(require_link(a, b.id()).session_code),
      root_key_(require_link(a, b.id()).pair_key),
      a_(&a, root_key_, direction_label(a.id(), b.id()), direction_label(b.id(), a.id())),
      b_(&b, require_link(b, a.id()).pair_key, direction_label(b.id(), a.id()),
         direction_label(a.id(), b.id())) {
  // Both ends must have derived identical session state.
  if (!(require_link(a, b.id()).session_code == require_link(b, a.id()).session_code)) {
    throw std::invalid_argument("SecureChannel: session codes disagree");
  }
}

std::optional<std::vector<std::uint8_t>> SecureChannel::send(
    NodeId from, std::span<const std::uint8_t> payload) {
  Endpoint* tx = nullptr;
  Endpoint* rx = nullptr;
  if (from == a_.node->id()) {
    tx = &a_;
    rx = &b_;
  } else if (from == b_.node->id()) {
    tx = &b_;
    rx = &a_;
  } else {
    throw std::invalid_argument("SecureChannel::send: sender is not an endpoint");
  }
  ++sent_;

  const crypto::SealedMessage sealed = tx->sealer.seal(payload);
  const BitVector bits = BitVector::from_bytes(sealed.to_bytes());
  const TxCode code{kInvalidCode, &session_pattern_};
  const auto received =
      phy_.transmit(tx->node->id(), rx->node->id(), code, TxClass::SessionUnicast, bits);
  if (!received.has_value()) return std::nullopt;  // lost on the air

  const auto parsed = crypto::SealedMessage::from_bytes(received->to_bytes());
  if (!parsed.has_value()) {
    ++rejected_;
    return std::nullopt;
  }
  auto opened = rx->unsealer.open(*parsed);
  if (!opened.has_value()) {
    ++rejected_;
    return std::nullopt;
  }
  ++accepted_;
  return opened;
}

void SecureChannel::rekey() {
  root_key_ = crypto::derive_key(root_key_, "rekey");
  ++generation_;
  const std::string gen = ":g" + std::to_string(generation_);
  const std::string ab = direction_label(a_.node->id(), b_.node->id()) + gen;
  const std::string ba = direction_label(b_.node->id(), a_.node->id()) + gen;
  a_.sealer = crypto::Sealer(root_key_, ab);
  a_.unsealer = crypto::Unsealer(root_key_, ba);
  b_.sealer = crypto::Sealer(root_key_, ba);
  b_.unsealer = crypto::Unsealer(root_key_, ab);
}

std::optional<std::string> SecureChannel::send_text(NodeId from, const std::string& text) {
  const auto bytes = send(from, std::span<const std::uint8_t>(
                                    reinterpret_cast<const std::uint8_t*>(text.data()),
                                    text.size()));
  if (!bytes.has_value()) return std::nullopt;
  return std::string(bytes->begin(), bytes->end());
}

}  // namespace jrsnd::core
