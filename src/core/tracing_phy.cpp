#include "core/tracing_phy.hpp"

#include <ostream>

#include "obs/event_log.hpp"
#include "obs/sinks.hpp"
#include "obs/span.hpp"

namespace jrsnd::core {

const char* tx_class_name(TxClass cls) noexcept {
  switch (cls) {
    case TxClass::Hello: return "HELLO";
    case TxClass::Confirm: return "CONFIRM";
    case TxClass::Auth: return "AUTH";
    case TxClass::SessionUnicast: return "MNDP-UNICAST";
    case TxClass::SessionHello: return "MNDP-HELLO";
    case TxClass::SessionConfirm: return "MNDP-CONFIRM";
  }
  return "?";
}

std::optional<BitVector> TracingPhy::transmit(NodeId from, NodeId to, TxCode code, TxClass cls,
                                              const BitVector& payload) {
  auto result = inner_.transmit(from, to, code, cls, payload);
  const obs::SpanContext span = obs::current_span();
  records_.push_back(TxRecord{from, to, code.id, cls, payload.size(), result.has_value(),
                              now_.seconds(), next_seq_++, span.trace_id, span.span_id});
  return result;
}

std::vector<TxRecord> TracingPhy::by_class(TxClass cls) const {
  std::vector<TxRecord> out;
  for (const TxRecord& r : records_) {
    if (r.cls == cls) out.push_back(r);
  }
  return out;
}

std::size_t TracingPhy::delivered_count() const noexcept {
  std::size_t count = 0;
  for (const TxRecord& r : records_) count += r.delivered;
  return count;
}

void TracingPhy::print(std::ostream& os) const {
  for (const TxRecord& r : records_) {
    os << "  " << raw(r.from) << " -> " << raw(r.to) << "  " << tx_class_name(r.cls);
    if (r.code == kInvalidCode) {
      os << " (session code)";
    } else {
      os << " (C_" << raw(r.code) << ")";
    }
    os << "  " << r.payload_bits << "b  " << (r.delivered ? "delivered" : "LOST") << "\n";
  }
}

void TracingPhy::print_jsonl(std::ostream& os) const {
  for (const TxRecord& r : records_) {
    obs::TraceEvent ev("phy.tx", r.delivered ? obs::Severity::Info : obs::Severity::Warn);
    ev.t = r.t;
    ev.seq = r.seq;
    ev.with("from", std::uint64_t{raw(r.from)})
        .with("to", std::uint64_t{raw(r.to)})
        .with("class", tx_class_name(r.cls));
    if (r.code == kInvalidCode) {
      ev.with("session_code", true);
    } else {
      ev.with("code", std::uint64_t{raw(r.code)});
    }
    ev.with("bits", std::uint64_t{r.payload_bits}).with("delivered", r.delivered);
    if (r.trace_id != 0) {
      ev.with("trace", r.trace_id).with("span", std::uint64_t{r.span_id});
    }
    obs::write_jsonl(os, ev);
  }
}

}  // namespace jrsnd::core
