// The physical-layer seam between the protocol engines and the two
// evaluation planes (DESIGN.md §4.1).
//
// Protocol engines (dndp.cpp, mndp.cpp) are written once against PhyModel.
// Two implementations exist:
//   * AbstractPhy — applies the per-message jamming-success model proved in
//     Theorem 1 (used by the 2000-node Monte-Carlo that regenerates the
//     paper's figures);
//   * ChipPhy — actually ECC-encodes, spreads, superposes jamming chips,
//     synchronizes and de-spreads (used by tests/examples to validate that
//     the abstract model matches the real physical layer).
#pragma once

#include <optional>

#include "common/bit_vector.hpp"
#include "common/types.hpp"
#include "dsss/spread_code.hpp"

namespace jrsnd::core {

/// Protocol role of a transmission; decides which Theorem-1 probability
/// (beta vs beta') applies and whether the code is a pool or session code.
enum class TxClass {
  Hello,          ///< D-NDP HELLO (pool code)
  Confirm,        ///< D-NDP CONFIRM (pool code, first of the follow-up trio)
  Auth,           ///< D-NDP authentication messages (pool code, follow-ups)
  SessionUnicast, ///< M-NDP request/response over an established session code
  SessionHello,   ///< M-NDP final HELLO over the freshly derived session code
  SessionConfirm, ///< M-NDP final CONFIRM over the session code
};

/// The spread code of a transmission: pool codes carry their pool id (the
/// jammer may have compromised them); session codes carry kInvalidCode.
/// `pattern` supplies the actual chips; AbstractPhy ignores it and ChipPhy
/// requires it.
struct TxCode {
  CodeId id = kInvalidCode;
  const dsss::SpreadCode* pattern = nullptr;
};

class PhyModel {
 public:
  virtual ~PhyModel() = default;

  /// Announces the start of a D-NDP sub-session between (a, b) on pool code
  /// `code`. AbstractPhy draws the sub-session's jamming fate here so the
  /// three follow-up messages share one group-level jam event, matching
  /// Theorem 1's beta'.
  virtual void begin_subsession(NodeId a, NodeId b, CodeId code) = 0;

  /// Attempts to deliver `payload` from `from` to `to`, spread with `code`.
  /// Returns the bits the receiver recovered, or nullopt when the message
  /// was lost (out of range, jammed beyond ECC tolerance, or revoked code).
  [[nodiscard]] virtual std::optional<BitVector> transmit(NodeId from, NodeId to, TxCode code,
                                                          TxClass cls,
                                                          const BitVector& payload) = 0;
};

}  // namespace jrsnd::core
