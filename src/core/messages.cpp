#include "core/messages.hpp"

#include <algorithm>
#include <cassert>

#include "crypto/hmac.hpp"

namespace jrsnd::core {

namespace {

constexpr std::uint32_t kListCountBits = 16;
constexpr std::uint32_t kHopCountBits = 8;
constexpr std::size_t kTagBits = 256;  // cryptographic content of MAC/SIG

/// Bounds-checked sequential reader over a BitVector.
class BitReader {
 public:
  explicit BitReader(const BitVector& bits) : bits_(bits) {}

  [[nodiscard]] bool read(std::size_t width, std::uint64_t& out) {
    if (pos_ + width > bits_.size()) return false;
    out = bits_.read_uint(pos_, width);
    pos_ += width;
    return true;
  }

  [[nodiscard]] bool read_bits(std::size_t width, BitVector& out) {
    if (pos_ + width > bits_.size()) return false;
    out = bits_.slice(pos_, width);
    pos_ += width;
    return true;
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == bits_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  const BitVector& bits_;
  std::size_t pos_ = 0;
};

void append_type(BitVector& bv, MessageType type, const WireConfig& cfg) {
  bv.append_uint(static_cast<std::uint64_t>(type), cfg.l_t);
}

void append_id(BitVector& bv, NodeId id, const WireConfig& cfg) {
  bv.append_uint(raw(id) & ((1ULL << cfg.l_id) - 1), cfg.l_id);
}

void append_list(BitVector& bv, const std::vector<NodeId>& list, const WireConfig& cfg) {
  bv.append_uint(list.size(), kListCountBits);
  for (const NodeId id : list) append_id(bv, id, cfg);
}

bool read_id(BitReader& r, const WireConfig& cfg, NodeId& out) {
  std::uint64_t v = 0;
  if (!r.read(cfg.l_id, v)) return false;
  out = node_id(static_cast<std::uint32_t>(v));
  return true;
}

bool read_list(BitReader& r, const WireConfig& cfg, std::vector<NodeId>& out) {
  std::uint64_t count = 0;
  if (!r.read(kListCountBits, count)) return false;
  out.clear();
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    NodeId id = kInvalidNode;
    if (!read_id(r, cfg, id)) return false;
    out.push_back(id);
  }
  return true;
}

/// Signature on the wire: the 256-bit tag, zero-padded (or truncated, for
/// pathological configs) to l_sig bits.
void append_signature(BitVector& bv, const crypto::IbcSignature& sig, const WireConfig& cfg) {
  const BitVector tag = BitVector::from_bytes(
      std::span<const std::uint8_t>(sig.tag.data(), sig.tag.size()));
  const std::size_t keep = std::min<std::size_t>(kTagBits, cfg.l_sig);
  bv.append(tag.slice(0, keep));
  for (std::size_t i = keep; i < cfg.l_sig; ++i) bv.push_back(false);
}

bool read_signature(BitReader& r, const WireConfig& cfg, crypto::IbcSignature& out) {
  BitVector field;
  if (!r.read_bits(cfg.l_sig, field)) return false;
  out = crypto::IbcSignature{};
  const std::size_t keep = std::min<std::size_t>(kTagBits, cfg.l_sig);
  const std::vector<std::uint8_t> bytes = field.slice(0, keep).to_bytes();
  std::copy(bytes.begin(), bytes.end(), out.tag.begin());
  return true;
}

void append_mac(BitVector& bv, const crypto::Sha256Digest& mac, const WireConfig& cfg) {
  bv.append(truncate_digest(mac, cfg.l_mac));
}

}  // namespace

std::optional<MessageType> peek_type(const BitVector& bits, const WireConfig& cfg) {
  if (bits.size() < cfg.l_t) return std::nullopt;
  const std::uint64_t v = bits.read_uint(0, cfg.l_t);
  if (v < 1 || v > 7) return std::nullopt;
  return static_cast<MessageType>(v);
}

BitVector truncate_digest(const crypto::Sha256Digest& digest, std::uint32_t bits) {
  const BitVector full = BitVector::from_bytes(
      std::span<const std::uint8_t>(digest.data(), digest.size()));
  const std::size_t keep = std::min<std::size_t>(bits, full.size());
  BitVector out = full.slice(0, keep);
  for (std::size_t i = keep; i < bits; ++i) out.push_back(false);
  return out;
}

// --- HelloMessage -----------------------------------------------------------

BitVector HelloMessage::encode(const WireConfig& cfg) const {
  BitVector bv;
  append_type(bv, MessageType::Hello, cfg);
  append_id(bv, sender, cfg);
  return bv;
}

std::optional<HelloMessage> HelloMessage::decode(const BitVector& bits, const WireConfig& cfg) {
  BitReader r(bits);
  std::uint64_t type = 0;
  HelloMessage msg;
  if (!r.read(cfg.l_t, type) || type != static_cast<std::uint64_t>(MessageType::Hello)) {
    return std::nullopt;
  }
  if (!read_id(r, cfg, msg.sender) || !r.done()) return std::nullopt;
  return msg;
}

// --- ConfirmMessage ---------------------------------------------------------

BitVector ConfirmMessage::encode(const WireConfig& cfg) const {
  BitVector bv;
  append_type(bv, MessageType::Confirm, cfg);
  append_id(bv, sender, cfg);
  return bv;
}

std::optional<ConfirmMessage> ConfirmMessage::decode(const BitVector& bits,
                                                     const WireConfig& cfg) {
  BitReader r(bits);
  std::uint64_t type = 0;
  ConfirmMessage msg;
  if (!r.read(cfg.l_t, type) || type != static_cast<std::uint64_t>(MessageType::Confirm)) {
    return std::nullopt;
  }
  if (!read_id(r, cfg, msg.sender) || !r.done()) return std::nullopt;
  return msg;
}

// --- AuthMessage ------------------------------------------------------------

std::vector<std::uint8_t> AuthMessage::mac_input(NodeId sender, const BitVector& nonce) {
  BitVector bv;
  bv.append_uint(raw(sender), 32);
  bv.append(nonce);
  return bv.to_bytes();
}

AuthMessage AuthMessage::make(NodeId sender, BitVector nonce, const crypto::SymmetricKey& key,
                              const WireConfig& /*cfg*/) {
  AuthMessage msg;
  msg.sender = sender;
  msg.mac = crypto::compute_mac(key, mac_input(sender, nonce));
  msg.nonce = std::move(nonce);
  return msg;
}

bool AuthMessage::verify(const crypto::SymmetricKey& key, const WireConfig& cfg) const {
  const crypto::Sha256Digest expected = crypto::compute_mac(key, mac_input(sender, nonce));
  // Compare over the wire width (the receiver only ever saw l_mac bits).
  return truncate_digest(expected, cfg.l_mac) == truncate_digest(mac, cfg.l_mac);
}

BitVector AuthMessage::encode(const WireConfig& cfg) const {
  assert(nonce.size() == cfg.l_n);
  BitVector bv;
  append_type(bv, MessageType::Auth, cfg);
  append_id(bv, sender, cfg);
  bv.append(nonce);
  append_mac(bv, mac, cfg);
  return bv;
}

std::optional<AuthMessage> AuthMessage::decode(const BitVector& bits, const WireConfig& cfg) {
  BitReader r(bits);
  std::uint64_t type = 0;
  AuthMessage msg;
  if (!r.read(cfg.l_t, type) || type != static_cast<std::uint64_t>(MessageType::Auth)) {
    return std::nullopt;
  }
  BitVector mac_bits;
  if (!read_id(r, cfg, msg.sender) || !r.read_bits(cfg.l_n, msg.nonce) ||
      !r.read_bits(cfg.l_mac, mac_bits) || !r.done()) {
    return std::nullopt;
  }
  // Store the wire MAC left-aligned in the 256-bit digest field.
  msg.mac.fill(0);
  const std::vector<std::uint8_t> bytes = mac_bits.to_bytes();
  std::copy(bytes.begin(), bytes.end(), msg.mac.begin());
  return msg;
}

// --- MndpRequest ------------------------------------------------------------

namespace {

void append_mndp_request_source_block(BitVector& bv, const MndpRequest& req,
                                      const WireConfig& cfg) {
  append_type(bv, MessageType::MndpRequest, cfg);
  append_id(bv, req.source, cfg);
  append_list(bv, req.source_neighbors, cfg);
  bv.append(req.nonce);
  bv.append_uint(req.nu, cfg.l_nu);
}

}  // namespace

std::vector<std::uint8_t> MndpRequest::source_sign_input(const WireConfig& cfg) const {
  BitVector bv;
  append_mndp_request_source_block(bv, *this, cfg);
  return bv.to_bytes();
}

std::vector<std::uint8_t> MndpRequest::hop_sign_input(std::size_t index,
                                                      const WireConfig& cfg) const {
  assert(index < hops.size());
  BitVector bv;
  append_mndp_request_source_block(bv, *this, cfg);
  for (std::size_t i = 0; i <= index; ++i) {
    append_id(bv, hops[i].id, cfg);
    append_list(bv, hops[i].neighbors, cfg);
  }
  return bv.to_bytes();
}

BitVector MndpRequest::encode(const WireConfig& cfg) const {
  assert(nonce.size() == cfg.l_n);
  BitVector bv;
  append_mndp_request_source_block(bv, *this, cfg);
  append_signature(bv, source_signature, cfg);
  bv.append_uint(hops.size(), kHopCountBits);
  for (const HopRecord& hop : hops) {
    append_id(bv, hop.id, cfg);
    append_list(bv, hop.neighbors, cfg);
    append_signature(bv, hop.signature, cfg);
  }
  return bv;
}

std::optional<MndpRequest> MndpRequest::decode(const BitVector& bits, const WireConfig& cfg) {
  BitReader r(bits);
  std::uint64_t type = 0;
  MndpRequest msg;
  if (!r.read(cfg.l_t, type) || type != static_cast<std::uint64_t>(MessageType::MndpRequest)) {
    return std::nullopt;
  }
  std::uint64_t nu = 0;
  if (!read_id(r, cfg, msg.source) || !read_list(r, cfg, msg.source_neighbors) ||
      !r.read_bits(cfg.l_n, msg.nonce) || !r.read(cfg.l_nu, nu) ||
      !read_signature(r, cfg, msg.source_signature)) {
    return std::nullopt;
  }
  msg.nu = static_cast<std::uint32_t>(nu);
  std::uint64_t hop_count = 0;
  if (!r.read(kHopCountBits, hop_count)) return std::nullopt;
  for (std::uint64_t i = 0; i < hop_count; ++i) {
    HopRecord hop;
    if (!read_id(r, cfg, hop.id) || !read_list(r, cfg, hop.neighbors) ||
        !read_signature(r, cfg, hop.signature)) {
      return std::nullopt;
    }
    msg.hops.push_back(std::move(hop));
  }
  if (!r.done()) return std::nullopt;
  return msg;
}

std::size_t MndpRequest::payload_bits(const WireConfig& cfg) const {
  return encode(cfg).size();
}

// --- MndpResponse -----------------------------------------------------------

namespace {

void append_mndp_response_block(BitVector& bv, const MndpResponse& resp, const WireConfig& cfg) {
  append_type(bv, MessageType::MndpResponse, cfg);
  append_id(bv, resp.source, cfg);
  append_id(bv, resp.via, cfg);
  append_id(bv, resp.responder, cfg);
  append_list(bv, resp.responder_neighbors, cfg);
  bv.append(resp.nonce);
  bv.append_uint(resp.nu, cfg.l_nu);
}

}  // namespace

std::vector<std::uint8_t> MndpResponse::responder_sign_input(const WireConfig& cfg) const {
  BitVector bv;
  append_mndp_response_block(bv, *this, cfg);
  return bv.to_bytes();
}

std::vector<std::uint8_t> MndpResponse::hop_sign_input(std::size_t index,
                                                       const WireConfig& cfg) const {
  assert(index < hops.size());
  BitVector bv;
  append_mndp_response_block(bv, *this, cfg);
  for (std::size_t i = 0; i <= index; ++i) {
    append_id(bv, hops[i].id, cfg);
    append_list(bv, hops[i].neighbors, cfg);
  }
  return bv.to_bytes();
}

BitVector MndpResponse::encode(const WireConfig& cfg) const {
  assert(nonce.size() == cfg.l_n);
  BitVector bv;
  append_mndp_response_block(bv, *this, cfg);
  append_signature(bv, responder_signature, cfg);
  bv.append_uint(hops.size(), kHopCountBits);
  for (const HopRecord& hop : hops) {
    append_id(bv, hop.id, cfg);
    append_list(bv, hop.neighbors, cfg);
    append_signature(bv, hop.signature, cfg);
  }
  return bv;
}

std::optional<MndpResponse> MndpResponse::decode(const BitVector& bits, const WireConfig& cfg) {
  BitReader r(bits);
  std::uint64_t type = 0;
  MndpResponse msg;
  if (!r.read(cfg.l_t, type) || type != static_cast<std::uint64_t>(MessageType::MndpResponse)) {
    return std::nullopt;
  }
  std::uint64_t nu = 0;
  if (!read_id(r, cfg, msg.source) || !read_id(r, cfg, msg.via) ||
      !read_id(r, cfg, msg.responder) || !read_list(r, cfg, msg.responder_neighbors) ||
      !r.read_bits(cfg.l_n, msg.nonce) || !r.read(cfg.l_nu, nu) ||
      !read_signature(r, cfg, msg.responder_signature)) {
    return std::nullopt;
  }
  msg.nu = static_cast<std::uint32_t>(nu);
  std::uint64_t hop_count = 0;
  if (!r.read(kHopCountBits, hop_count)) return std::nullopt;
  for (std::uint64_t i = 0; i < hop_count; ++i) {
    HopRecord hop;
    if (!read_id(r, cfg, hop.id) || !read_list(r, cfg, hop.neighbors) ||
        !read_signature(r, cfg, hop.signature)) {
      return std::nullopt;
    }
    msg.hops.push_back(std::move(hop));
  }
  if (!r.done()) return std::nullopt;
  return msg;
}

std::size_t MndpResponse::payload_bits(const WireConfig& cfg) const {
  return encode(cfg).size();
}

}  // namespace jrsnd::core
