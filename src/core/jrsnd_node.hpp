// Per-node protocol state: identity, key material, spread codes, revocation
// counters, and the logical-neighbor table with established session codes.
//
// One NodeState instance backs both protocol engines; the Monte-Carlo driver
// creates n of them per run, and examples/tests create a handful.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/bit_vector.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "crypto/ibc.hpp"
#include "dsss/spread_code.hpp"
#include "predist/authority.hpp"
#include "predist/revocation.hpp"

namespace jrsnd::core {

/// State kept for each discovered (logical) neighbor.
struct LogicalNeighbor {
  crypto::SymmetricKey pair_key{};  ///< K_AB
  BitVector session_code;           ///< C_AB = h_K(n_A ^ n_B), N bits
  bool via_mndp = false;            ///< discovered indirectly
};

class NodeState {
 public:
  /// `gamma` is the DoS revocation threshold. The node keeps a reference to
  /// the authority only to resolve pool-code chip patterns (the real system
  /// ships the patterns on the device; the reference avoids copying the
  /// pool per node).
  NodeState(NodeId id, crypto::IbcPrivateKey key, std::vector<CodeId> codes,
            const predist::CodePoolAuthority& authority, std::uint32_t gamma, Rng rng);

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const crypto::IbcPrivateKey& key() const noexcept { return key_; }

  /// Pool codes not locally revoked, ascending.
  [[nodiscard]] std::vector<CodeId> usable_codes() const { return revocation_.usable_codes(); }

  [[nodiscard]] const std::vector<CodeId>& all_codes() const noexcept { return codes_; }

  /// Chip pattern of a held pool code.
  [[nodiscard]] const dsss::SpreadCode& code_pattern(CodeId code) const;

  [[nodiscard]] predist::RevocationState& revocation() noexcept { return revocation_; }
  [[nodiscard]] const predist::RevocationState& revocation() const noexcept {
    return revocation_;
  }

  /// Fresh l_n-bit random nonce.
  [[nodiscard]] BitVector make_nonce(std::uint32_t bits);

  /// Per-node deterministic randomness stream.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  // --- logical-neighbor table ------------------------------------------

  void add_logical_neighbor(NodeId peer, LogicalNeighbor info);
  [[nodiscard]] bool knows(NodeId peer) const { return neighbors_.contains(peer); }
  [[nodiscard]] const LogicalNeighbor* neighbor(NodeId peer) const;

  /// Logical neighbor ids, ascending (the paper's L_A).
  [[nodiscard]] std::vector<NodeId> logical_neighbors() const;

  /// Drops a logical neighbor (used when a node moves out of range).
  void remove_logical_neighbor(NodeId peer);

 private:
  NodeId id_;
  crypto::IbcPrivateKey key_;
  std::vector<CodeId> codes_;
  const predist::CodePoolAuthority* authority_;
  predist::RevocationState revocation_;
  Rng rng_;
  std::unordered_map<NodeId, LogicalNeighbor> neighbors_;
};

}  // namespace jrsnd::core
