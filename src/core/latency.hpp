// Neighbor-discovery latency model (paper Theorems 2 and 4).
//
// D-NDP latency decomposes into the identification phase
// (T_i = t_rB + t_dB + t_rA + t_dA, each a uniform residual of the
// buffer/processing schedule) and the authentication phase
// (two long messages + two key computations). sample_dndp_latency() draws
// the four uniforms, so run-averages converge to Theorem 2's closed form;
// M-NDP latency is the deterministic Theorem 4 expression evaluated at the
// path length actually used.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/params.hpp"
#include "dsss/timing.hpp"

namespace jrsnd::core {

class LatencyModel {
 public:
  explicit LatencyModel(const Params& params);

  /// One sampled D-NDP latency (identification residuals drawn from `rng`).
  [[nodiscard]] Duration sample_dndp(Rng& rng) const;

  /// Theorem 2's expectation.
  [[nodiscard]] Duration expected_dndp() const;

  /// Theorem 4 evaluated at path length `hops` and average degree `g`.
  [[nodiscard]] Duration mndp(double g, std::uint32_t hops) const;

  /// max(T_D, T_M) — the paper's combined JR-SND latency.
  [[nodiscard]] Duration combined(Duration dndp, Duration mndp) const;

  [[nodiscard]] const dsss::TimingModel& timing() const noexcept { return timing_; }

 private:
  Params params_;
  dsss::TimingModel timing_;
};

}  // namespace jrsnd::core
