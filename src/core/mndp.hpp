// M-NDP: the Multi-hop Neighbor Discovery Protocol (paper §V-C).
//
// Two physical neighbors A and B that failed D-NDP (no common code, or all
// common codes compromised and jammed) discover each other through a
// jamming-resilient path of already-discovered logical links:
//
//   * A unicasts a signed request {ID_A, L_A, n_A, nu, SIG_A} to every
//     logical neighbor over the pairwise session codes.
//   * Each recipient verifies every signature in the request, checks that
//     the claimed neighbor lists form a legitimate path back to the source,
//     responds if the source is unknown to it (deriving the pairwise key
//     and session code C_BA = h_{K_BA}(n_B ^ n_A) and broadcasting
//     {HELLO, ID_B}_{C_BA}), and forwards an extended request to the nodes
//     not already covered by the lists it carries while fewer than nu hops
//     have been traversed.
//   * The signed response retraces the reverse path; the source verifies
//     it, derives the same session code, and listens. Discovery completes
//     only if B's session-code HELLO physically reaches A (so non-physical
//     "false positives" cost a response + HELLO broadcast but never corrupt
//     neighbor tables); the optional GPS filter suppresses even that cost.
//
// The engine executes the real signature chain (every verification counted,
// for both the DoS analysis and the latency model's 2nu(nu+1) t_ver term).
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/jrsnd_node.hpp"
#include "core/messages.hpp"
#include "core/params.hpp"
#include "core/phy_model.hpp"
#include "sim/topology.hpp"

namespace jrsnd::core {

struct MndpStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t signature_verifications = 0;
  std::uint64_t signatures_created = 0;
  std::uint64_t requests_dropped = 0;      ///< failed verification / illegit path
  std::uint64_t discoveries = 0;           ///< new logical pairs completed
  std::uint64_t false_positive_responses = 0;  ///< responses for non-physical sources
  std::uint32_t max_hops_seen = 0;
  std::uint64_t retransmissions = 0;  ///< relay/completion retries spent
  std::uint64_t timeouts = 0;         ///< attempt timeouts that expired
};

class MndpEngine {
 public:
  /// `nodes` must be indexable by raw NodeId. `topology` supplies physical
  /// adjacency (the final session-code HELLO only crosses real links) and
  /// positions for the GPS filter.
  /// `retry_seed` seeds the backoff-jitter Rng for the drop-tolerant retry
  /// budget (active only when `params.retry` is enabled; the default policy
  /// keeps the engine bit-identical to the unhardened one).
  MndpEngine(const Params& params, PhyModel& phy, const sim::Topology& topology,
             std::shared_ptr<const crypto::PairingOracle> oracle, bool gps_filter = false,
             std::uint64_t retry_seed = 0);

  /// Runs one full initiation from `initiator` to quiescence (the request
  /// flood, all responses, and all completion handshakes). Updates logical
  /// neighbor tables of every participating node.
  MndpStats initiate(NodeState& initiator, std::span<NodeState> nodes);

  /// Runs one initiation from every node in random order — the paper's
  /// "each node periodically initiates M-NDP"; one such sweep is one M-NDP
  /// round. Returns aggregate stats.
  MndpStats run_round(std::span<NodeState> nodes, Rng& rng);

 private:
  struct PendingRequest {
    NodeId holder;  ///< node about to process this request copy
    NodeId arrived_from;
    MndpRequest request;
  };

  /// Per-message signature-chain verification; bumps stats.
  [[nodiscard]] bool verify_request(const MndpRequest& req, MndpStats& stats) const;
  [[nodiscard]] bool verify_response(const MndpResponse& resp, MndpStats& stats) const;

  /// The paper's path-legitimacy check: consecutive (claimed) neighbor
  /// lists must chain from the source to `holder` via `arrived_from`.
  [[nodiscard]] bool path_is_legitimate(const MndpRequest& req, NodeId holder,
                                        NodeId arrived_from) const;

  void process_request(PendingRequest&& item, std::span<NodeState> nodes,
                       std::deque<PendingRequest>& queue, MndpStats& stats);

  /// B's response: built, signed, and walked back along the reverse path
  /// with per-hop verification; then the session-code HELLO/CONFIRM
  /// completion handshake.
  void respond(NodeState& responder, const MndpRequest& req, NodeId reverse_next,
               std::span<NodeState> nodes, MndpStats& stats);

  /// Unicast over an established session link; returns the received bits.
  /// Applies the drop-tolerant retry budget when `params.retry` is enabled.
  [[nodiscard]] std::optional<BitVector> session_unicast(NodeState& from, NodeState& to,
                                                         const BitVector& payload, TxClass cls,
                                                         MndpStats& stats);

  /// One transmission with the retry budget. Session-class transmissions
  /// draw a fresh jamming fate per message, so a retransmission needs no
  /// re-arm. With retries disabled this is exactly one `phy_.transmit`.
  [[nodiscard]] std::optional<BitVector> transmit_with_retry(NodeId from, NodeId to,
                                                             const TxCode& code, TxClass cls,
                                                             const BitVector& payload,
                                                             MndpStats& stats);

  const Params& params_;
  WireConfig wire_;
  PhyModel& phy_;
  const sim::Topology& topology_;
  std::shared_ptr<const crypto::PairingOracle> oracle_;
  bool gps_filter_;
  Rng retry_rng_;

  /// Dedup: request keys (source, nonce) each node has already processed.
  std::unordered_map<NodeId, std::unordered_set<std::uint64_t>> seen_;
};

}  // namespace jrsnd::core
