#include "core/discovery_sim.hpp"

#include <atomic>
#include <memory>
#include <vector>

#include "adversary/compromise.hpp"
#include "adversary/jammer.hpp"
#include "common/thread_pool.hpp"
#include "core/abstract_phy.hpp"
#include "core/analysis.hpp"
#include "core/dndp.hpp"
#include "core/latency.hpp"
#include "fault/faulty_phy.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/scoped_timer.hpp"
#include "sim/mobility.hpp"
#include "sim/topology.hpp"

namespace jrsnd::core {

const char* jammer_name(JammerKind kind) noexcept {
  switch (kind) {
    case JammerKind::None: return "none";
    case JammerKind::Random: return "random";
    case JammerKind::Reactive: return "reactive";
    case JammerKind::Intelligent: return "intelligent";
  }
  return "?";
}

DiscoverySimulator::DiscoverySimulator(ExperimentConfig config) : config_(std::move(config)) {}

RunResult DiscoverySimulator::run_once(std::uint64_t seed) const {
  const Params& p = config_.params;
  Rng root(seed);
  RunResult result;

  JRSND_SCOPED_TIMER("sim.phase.run.seconds");
  // Monte-Carlo runs have no shared timeline; stamp this run's events with
  // the run index (thread-local, so parallel workers don't race the global
  // clock and a seed-ordered sort reproduces the serial trace byte for byte).
  const obs::ScopedSimTime run_time(
      seed >= config_.base_seed ? static_cast<double>(seed - config_.base_seed)
                                : static_cast<double>(seed));
  if (obs::tracing_enabled()) {
    obs::event_log().emit(obs::TraceEvent("run.begin")
                              .with("seed", seed)
                              .with("n", std::uint64_t{p.n})
                              .with("jammer", jammer_name(config_.jammer)));
  }
  // Phase timers: emplace() ends the previous phase (destructor records its
  // elapsed time) before the next one starts.
  std::optional<obs::ScopedTimer> phase{obs::metrics_enabled()
                                            ? &obs::timer_histogram("sim.phase.world.seconds")
                                            : nullptr};

  // --- world construction -------------------------------------------------
  predist::CodePoolAuthority authority(p.predist(), root.split());
  const predist::CodeAssignment& assignment = authority.assignment();

  const sim::Field field(p.field_width, p.field_height);
  Rng placement_rng = root.split();
  const sim::UniformPlacement placement(field, p.n, placement_rng);
  const sim::Topology topology(field, placement.snapshot(kSimStart), p.tx_range);
  result.avg_degree = topology.average_degree();
  result.physical_pairs = topology.pairs().size();

  Rng adversary_rng = root.split();
  const adversary::CompromiseModel compromise(assignment, p.q, adversary_rng);
  result.compromised_codes = compromise.compromised_code_count();

  const adversary::JammerParams jp{p.z, p.mu};
  std::unique_ptr<adversary::Jammer> jammer;
  switch (config_.jammer) {
    case JammerKind::None:
      jammer = std::make_unique<adversary::NullJammer>();
      break;
    case JammerKind::Random:
      jammer = std::make_unique<adversary::RandomJammer>(compromise, jp);
      break;
    case JammerKind::Reactive:
      jammer = std::make_unique<adversary::ReactiveJammer>(compromise, jp);
      break;
    case JammerKind::Intelligent:
      jammer = std::make_unique<adversary::IntelligentJammer>(compromise);
      break;
  }

  const crypto::IbcAuthority ibc(root.next());
  std::vector<NodeState> nodes;
  nodes.reserve(p.n);
  for (std::uint32_t i = 0; i < p.n; ++i) {
    const NodeId id = node_id(i);
    nodes.emplace_back(id, ibc.issue(id), assignment.codes_of(id), authority, p.gamma,
                       root.split());
  }

  // --- D-NDP over every physical-neighbor pair ----------------------------
  phase.emplace(obs::metrics_enabled() ? &obs::timer_histogram("sim.phase.dndp.seconds")
                                       : nullptr);
  Rng phy_rng = root.split();
  AbstractPhy phy(topology, *jammer, phy_rng);

  // Optional fault layer: wraps the PHY without perturbing the root Rng
  // chain (its draws come from the plan seed salted with the run seed), so
  // an absent or inactive plan leaves the run bit-identical.
  std::optional<fault::FaultyPhy> faulty;
  PhyModel* active_phy = &phy;
  const HandshakeClock* hs_clock = nullptr;
  if (config_.faults.has_value()) {
    faulty.emplace(phy, *config_.faults, seed);
    active_phy = &*faulty;
    hs_clock = &faulty->clocks();
  }

  DndpEngine dndp(p, *active_phy, config_.redundancy, seed, hs_clock);

  sim::LogicalGraph logical(p.n);
  std::vector<std::pair<NodeId, NodeId>> failed_pairs;
  Rng order_rng = root.split();
  for (const auto& [a, b] : topology.pairs()) {
    const bool a_first = order_rng.bernoulli(0.5);
    NodeState& initiator = nodes[raw(a_first ? a : b)];
    NodeState& responder = nodes[raw(a_first ? b : a)];
    const DndpResult r = dndp.run(initiator, responder);
    result.dndp_retransmissions += r.retransmissions;
    result.dndp_timeouts += r.timeouts;
    if (r.discovered) {
      ++result.dndp_discovered;
      logical.add_edge(a, b);
    } else {
      failed_pairs.emplace_back(a, b);
    }
  }

  phase.emplace(obs::metrics_enabled() ? &obs::timer_histogram("sim.phase.mndp.seconds")
                                       : nullptr);
  // Standalone M-NDP (the series the paper plots): over ALL physical pairs,
  // does a <= nu-hop logical path exist that avoids the pair's own direct
  // link? Evaluated on the pure D-NDP logical graph, as in Theorem 3 —
  // before closure rounds mutate it.
  std::size_t standalone = 0;
  for (const auto& [a, b] : topology.pairs()) {
    standalone += logical.reachable_within(a, b, p.nu, /*exclude_direct=*/true);
  }

  // --- M-NDP ---------------------------------------------------------------
  if (config_.full_mndp) {
    MndpEngine mndp(p, *active_phy, topology, ibc.oracle(), config_.gps_filter, seed);
    Rng round_rng = root.split();
    result.mndp_stats = mndp.run_round(std::span<NodeState>(nodes), round_rng);
    for (const auto& [a, b] : failed_pairs) {
      const LogicalNeighbor* info = nodes[raw(a)].neighbor(b);
      if (info != nullptr && info->via_mndp && nodes[raw(b)].knows(a)) {
        ++result.mndp_recovered;
      }
    }
  } else {
    // Graph-level evaluation: the paper's pruned flood reaches exactly the
    // nodes within nu logical hops, and the final session-code handshake
    // always succeeds between physical neighbors (fresh secret code).
    std::vector<std::pair<NodeId, NodeId>> remaining = failed_pairs;
    for (std::uint32_t round = 0; round < config_.mndp_rounds && !remaining.empty(); ++round) {
      std::vector<std::pair<NodeId, NodeId>> recovered_now;
      std::vector<std::pair<NodeId, NodeId>> still_failed;
      for (const auto& [a, b] : remaining) {
        if (logical.reachable_within(a, b, p.nu)) {
          recovered_now.emplace_back(a, b);
        } else {
          still_failed.emplace_back(a, b);
        }
      }
      result.mndp_recovered += recovered_now.size();
      // Later rounds may ride links the earlier rounds established.
      for (const auto& [a, b] : recovered_now) logical.add_edge(a, b);
      remaining = std::move(still_failed);
    }
  }

  // --- rates ----------------------------------------------------------------
  phase.emplace(obs::metrics_enabled() ? &obs::timer_histogram("sim.phase.rates.seconds")
                                       : nullptr);
  if (result.physical_pairs > 0) {
    const auto pairs = static_cast<double>(result.physical_pairs);
    result.p_dndp = static_cast<double>(result.dndp_discovered) / pairs;
    result.p_mndp = static_cast<double>(standalone) / pairs;
    result.p_jrsnd =
        static_cast<double>(result.dndp_discovered + result.mndp_recovered) / pairs;
  }
  const std::size_t failed = result.physical_pairs - result.dndp_discovered;
  if (failed > 0) {
    result.p_mndp_conditional =
        static_cast<double>(result.mndp_recovered) / static_cast<double>(failed);
    result.p_mndp_defined = true;
  }

  // --- latency ---------------------------------------------------------------
  const LatencyModel latency(p);
  Rng latency_rng = root.split();
  Stat dndp_latency;
  const std::size_t samples = std::max<std::size_t>(result.dndp_discovered, 1);
  for (std::size_t i = 0; i < std::min<std::size_t>(samples, 1000); ++i) {
    dndp_latency.add(latency.sample_dndp(latency_rng).seconds());
  }
  result.latency_dndp_s = dndp_latency.mean();
  result.latency_mndp_s = latency.mndp(result.avg_degree, p.nu).seconds();
  result.latency_jrsnd_s =
      jrsnd_latency(result.latency_dndp_s, result.latency_mndp_s);
  if (faulty.has_value()) {
    const auto& t = faulty->totals();
    result.faults_injected = t.dropped + t.duplicated + t.reordered + t.corrupted +
                             t.truncated + t.crash_blocked;
  }
  phase.reset();  // record the rates phase before run.end is emitted

  if (obs::tracing_enabled()) {
    obs::event_log().emit(obs::TraceEvent("run.end")
                              .with("seed", seed)
                              .with("pairs", std::uint64_t{result.physical_pairs})
                              .with("dndp_discovered", std::uint64_t{result.dndp_discovered})
                              .with("mndp_recovered", std::uint64_t{result.mndp_recovered})
                              .with("p_dndp", result.p_dndp)
                              .with("p_jrsnd", result.p_jrsnd));
  }
  return result;
}

namespace {

void accumulate(PointResult& agg, const RunResult& r) {
  agg.p_dndp.add(r.p_dndp);
  agg.p_mndp.add(r.p_mndp);
  if (r.p_mndp_defined) agg.p_mndp_conditional.add(r.p_mndp_conditional);
  agg.p_jrsnd.add(r.p_jrsnd);
  agg.latency_dndp.add(r.latency_dndp_s);
  agg.latency_mndp.add(r.latency_mndp_s);
  agg.latency_jrsnd.add(r.latency_jrsnd_s);
  agg.degree.add(r.avg_degree);
  agg.compromised_codes.add(static_cast<double>(r.compromised_codes));
}

}  // namespace

PointResult DiscoverySimulator::run_all() const {
  const std::uint32_t runs = config_.params.runs;
  const std::size_t threads = ThreadPool::default_thread_count();
  PointResult agg;

  // Sweep progress, published on the *process* registry so a live
  // MetricsExporter sees it even while workers record into scratch
  // registries (the thread-local override would otherwise swallow it).
  obs::Gauge* progress = nullptr;
  if (obs::metrics_enabled()) {
    obs::registry().gauge("sim.runs.total").set(static_cast<double>(runs));
    progress = &obs::registry().gauge("sim.runs.completed");
    progress->set(0.0);
  }

  // JRSND_THREADS=1 restores the historical fully-serial behavior.
  if (threads <= 1 || runs <= 1) {
    for (std::uint32_t run = 0; run < runs; ++run) {
      // Monte-Carlo runs have no shared timeline; publish the run index so
      // trace events still carry a monotone `t`.
      if (obs::tracing_enabled()) obs::event_log().set_sim_time(static_cast<double>(run));
      accumulate(agg, run_once(config_.base_seed + run));
      if (progress != nullptr) progress->set(static_cast<double>(run + 1));
    }
    return agg;
  }

  // Parallel path: seeds fan out across the pool. Each run is a fully
  // deterministic function of its seed, so only three things need care:
  //   * reduction order — results land in a seed-indexed vector and are
  //     folded serially below, making the Stats bit-identical to serial;
  //   * obs metrics — each worker records into its own scratch registry
  //     (thread-local override), merged and absorbed into the process
  //     registry afterwards so totals match the serial run;
  //   * trace time — run_once stamps its own events with the run index via
  //     ScopedSimTime, so a seed-ordered sort (obs::normalize_trace) makes
  //     the parallel trace byte-identical to the serial one.
  const bool metrics = obs::metrics_enabled();
  std::vector<RunResult> results(runs);
  ThreadPool pool(threads);
  std::vector<std::unique_ptr<obs::MetricsRegistry>> scratch;
  if (metrics) {
    scratch.reserve(pool.size());
    for (std::size_t w = 0; w < pool.size(); ++w) {
      scratch.push_back(std::make_unique<obs::MetricsRegistry>());
    }
  }
  std::atomic<std::uint32_t> completed{0};
  pool.parallel_for(runs, [&](std::size_t run, std::size_t worker) {
    const obs::ScopedMetricsRegistry guard(metrics ? scratch[worker].get() : nullptr);
    results[run] = run_once(config_.base_seed + run);
    const std::uint32_t done = completed.fetch_add(1, std::memory_order_relaxed) + 1;
    if (progress != nullptr) progress->set(static_cast<double>(done));
  });
  if (metrics) {
    obs::MetricsSnapshot merged;
    for (const auto& reg : scratch) merged.merge(reg->snapshot());
    obs::registry().absorb(merged);
  }
  for (const RunResult& r : results) accumulate(agg, r);
  return agg;
}

}  // namespace jrsnd::core
