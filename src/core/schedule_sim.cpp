#include "core/schedule_sim.hpp"

#include <algorithm>
#include <cmath>

namespace jrsnd::core {

namespace {
// Guard against floating-point edge cases at window boundaries.
constexpr double kEps = 1e-12;
}  // namespace

ScheduleSimulator::ScheduleSimulator(const dsss::TimingModel& timing) : timing_(timing) {}

std::optional<ScheduleSimulator::Sample> ScheduleSimulator::sample(
    std::uint32_t shared_code_slot, Rng& rng) const {
  const double t_h = timing_.hello_time().seconds();
  const double t_b = timing_.buffer_time().seconds();
  const double t_p = timing_.processing_time().seconds();
  const double lambda = timing_.lambda();
  const auto m = static_cast<std::uint64_t>(timing_.inputs().codes_per_node);
  const std::uint64_t copies_total = timing_.hello_rounds() * m;
  const double broadcast_end = static_cast<double>(copies_total) * t_h;

  // --- B's side: find the first processed buffer holding a full copy ----
  const double phi = rng.uniform_real(0.0, t_p);  // B's schedule phase
  double hello_despread = -1.0;
  std::uint64_t windows = 0;
  std::uint64_t copy_index = 0;

  for (std::uint64_t i = 0;; ++i) {
    const double window_end = phi + static_cast<double>(i) * t_p;
    const double window_start = window_end - t_b;
    if (window_start > broadcast_end) break;  // A stopped transmitting
    ++windows;

    const double lo = std::max(window_start, 0.0);
    const auto j_min = static_cast<std::uint64_t>(std::ceil(lo / t_h - kEps));
    const double j_max_f = std::floor(window_end / t_h + kEps) - 1.0;
    if (j_max_f < static_cast<double>(j_min)) continue;
    const auto j_max = static_cast<std::uint64_t>(j_max_f);

    // Smallest j >= j_min with j % m == shared_code_slot.
    const std::uint64_t offset = (shared_code_slot + m - (j_min % m)) % m;
    const std::uint64_t j = j_min + offset;
    if (j > j_max || j >= copies_total) continue;

    // Linear scan reaches the copy's chip position after a proportional
    // share of the full-buffer scan time t_p.
    const double position_fraction = (static_cast<double>(j) * t_h - window_start) / t_b;
    hello_despread = window_end + position_fraction * t_p;
    copy_index = j;
    break;
  }
  if (hello_despread < 0.0) return std::nullopt;

  // --- A's side: residual processing, then the bounded CONFIRM scan -----
  // B repeats the CONFIRM from hello_despread on; A's first buffer that is
  // entirely inside that stream begins at its next cycle boundary at least
  // t_b after hello_despread.
  const double psi = rng.uniform_real(0.0, t_p);  // A's schedule phase
  const double k =
      std::max(0.0, std::ceil((hello_despread + t_b - psi) / t_p - kEps));
  const double confirm_processing_start = psi + k * t_p;
  // CONFIRM repeats continuously, so it sits within the first N chip
  // positions of the buffer; the proof models the scan as U[0, lambda t_h].
  const double t_da = rng.uniform_real(0.0, lambda * t_h);

  Sample out;
  out.identification = Duration(confirm_processing_start + t_da);
  out.hello_despread_at = Duration(hello_despread);
  out.copies_sent = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(std::ceil(hello_despread / t_h)), copies_total);
  out.windows_scanned = windows;
  (void)copy_index;
  return out;
}

Duration ScheduleSimulator::mean_identification(std::size_t count, Rng& rng) const {
  const auto m = static_cast<std::uint32_t>(timing_.inputs().codes_per_node);
  double total = 0.0;
  std::size_t ok = 0;
  for (std::size_t s = 0; s < count; ++s) {
    const auto slot = static_cast<std::uint32_t>(rng.uniform(m));
    const auto result = sample(slot, rng);
    if (result.has_value()) {
      total += result->identification.seconds();
      ++ok;
    }
  }
  return Duration(ok == 0 ? 0.0 : total / static_cast<double>(ok));
}

}  // namespace jrsnd::core
