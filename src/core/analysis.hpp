// Closed-form performance analysis — paper §VI-A (Eqs. 1-2, Theorems 1-4).
//
// These formulas are what the paper's "analysis" curves plot; the benches
// print them next to the simulation measurements so the agreement (and the
// places where the bounds are loose) is visible, exactly as in Figs. 2-5.
#pragma once

#include "core/params.hpp"

namespace jrsnd::core {

/// Eq. (1): P(two nodes share exactly x codes).
[[nodiscard]] double pr_shared_codes(const Params& p, std::uint32_t x);

/// P(two nodes share at least one code) = 1 - Pr[0].
[[nodiscard]] double pr_share_at_least_one(const Params& p);

/// Eq. (2): alpha = P(a given code is compromised after q node captures).
[[nodiscard]] double alpha(const Params& p);

/// Expected number of compromised codes c = s * alpha.
[[nodiscard]] double expected_compromised_codes(const Params& p);

/// Theorem 1: bounds on the D-NDP discovery probability.
struct Theorem1Result {
  double p_lower = 0.0;   ///< P^- (reactive jamming, worst case)
  double p_upper = 0.0;   ///< P^+ (random jamming)
  double alpha = 0.0;     ///< Eq. (2)
  double c = 0.0;         ///< expected compromised codes
  double beta = 0.0;      ///< P(HELLO jammed | code compromised)
  double beta_prime = 0.0;///< P(>=1 follow-up jammed | code compromised)
};
[[nodiscard]] Theorem1Result theorem1(const Params& p);

/// Theorem 2: average D-NDP latency (seconds),
///   T_D ~= rho m (3m+4) N^2 l_h / 2 + 2 N l_f / R + 2 t_key.
[[nodiscard]] double theorem2_dndp_latency(const Params& p);

/// Theorem 3 (nu = 2): lower bound on the M-NDP discovery probability given
/// the D-NDP probability `p_d` and average physical degree `g`:
///   P_M >= 1 - (1 - p_d^2)^(g (1 - 3 sqrt(3) / (4 pi)) - 1).
[[nodiscard]] double theorem3_mndp_probability(double p_d, double g);

/// Extension beyond the paper (which leaves nu >= 3 "to simulations"): a
/// common-neighbor recursion generalizing Theorem 3. Let r_k be the
/// probability two adjacent nodes are logically connected within k hops:
///   r_1 = p_d,
///   m_k = 1 - (1 - r_{k-1} p_d)^(g_c),   g_c = g (1 - 3 sqrt(3)/(4 pi)) - 1,
///   r_k = 1 - (1 - p_d)(1 - m_k),
/// i.e. a <= k-hop indirect path exists if some common neighbor C links to
/// B directly and back to A within k-1 hops. m_nu is returned; m_2 equals
/// Theorem 3 exactly. Paths through non-common neighbors are ignored and
/// link states are treated as independent, so this tracks (and slightly
/// brackets) the simulation — bench/fig5_impact_of_nu prints both.
[[nodiscard]] double mndp_probability_recursive(double p_d, double g, std::uint32_t nu);

/// Theorem 4: average M-NDP latency (seconds) over a nu-hop path,
///   T_M = T_nu + 2 nu (nu+1) t_ver + 2 nu t_sig,
///   T_nu = N/R (3 nu (nu+1)/2 ((g+1) l_id + 2 l_sig) + 2 nu (l_n + l_nu)).
[[nodiscard]] double theorem4_mndp_latency(const Params& p, double g);

/// Combined JR-SND probability: P = P_D + (1 - P_D) P_M.
[[nodiscard]] double jrsnd_probability(double p_d, double p_m);

/// Combined JR-SND latency: max(T_D, T_M) (paper §VI-A3).
[[nodiscard]] double jrsnd_latency(double t_d, double t_m);

/// Expected average physical degree for uniform placement:
/// g ~= (n-1) * pi a^2 / |field| (border effects ignored).
[[nodiscard]] double expected_degree(const Params& p);

}  // namespace jrsnd::core
