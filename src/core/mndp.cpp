#include "core/mndp.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "crypto/session_code.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics_registry.hpp"

namespace jrsnd::core {

namespace {

/// Dedup key for (source, nonce).
std::uint64_t request_key(NodeId source, const BitVector& nonce) {
  const std::size_t take = std::min<std::size_t>(nonce.size(), 32);
  return (static_cast<std::uint64_t>(raw(source)) << 32) ^ nonce.read_uint(0, take);
}

}  // namespace

MndpEngine::MndpEngine(const Params& params, PhyModel& phy, const sim::Topology& topology,
                       std::shared_ptr<const crypto::PairingOracle> oracle, bool gps_filter,
                       std::uint64_t retry_seed)
    : params_(params),
      phy_(phy),
      topology_(topology),
      oracle_(std::move(oracle)),
      gps_filter_(gps_filter),
      retry_rng_(retry_seed ^ 0xA24BAED4963EE407ULL) {
  wire_.l_t = params.l_t;
  wire_.l_id = params.l_id;
  wire_.l_n = params.l_n;
  wire_.l_mac = params.l_mac;
  wire_.l_nu = params.l_nu;
  wire_.l_sig = params.l_sig;
}

std::optional<BitVector> MndpEngine::transmit_with_retry(NodeId from, NodeId to,
                                                         const TxCode& code, TxClass cls,
                                                         const BitVector& payload,
                                                         MndpStats& stats) {
  auto rx = phy_.transmit(from, to, code, cls, payload);
  if (rx || !params_.retry.enabled()) return rx;
  RetryState retry(params_.retry, retry_rng_);
  retry.on_send();  // the first, already-failed attempt
  while (true) {
    ++stats.timeouts;
    JRSND_COUNT("mndp.timeout.expired");
    const auto backoff = retry.on_timeout();
    if (!backoff) {
      JRSND_COUNT("mndp.timeout.exhausted");
      return std::nullopt;
    }
    ++stats.retransmissions;
    JRSND_COUNT("mndp.retx.attempts");
    retry.on_send();
    rx = phy_.transmit(from, to, code, cls, payload);
    if (rx) {
      JRSND_COUNT("mndp.retx.recovered");
      return rx;
    }
  }
}

std::optional<BitVector> MndpEngine::session_unicast(NodeState& from, NodeState& to,
                                                     const BitVector& payload, TxClass cls,
                                                     MndpStats& stats) {
  const LogicalNeighbor* link = from.neighbor(to.id());
  if (link == nullptr) return std::nullopt;
  const dsss::SpreadCode pattern(link->session_code);
  const TxCode code{kInvalidCode, &pattern};
  return transmit_with_retry(from.id(), to.id(), code, cls, payload, stats);
}

bool MndpEngine::verify_request(const MndpRequest& req, MndpStats& stats) const {
  ++stats.signature_verifications;
  if (!oracle_->verify(req.source, req.source_sign_input(wire_), req.source_signature)) {
    return false;
  }
  for (std::size_t i = 0; i < req.hops.size(); ++i) {
    ++stats.signature_verifications;
    if (!oracle_->verify(req.hops[i].id, req.hop_sign_input(i, wire_),
                         req.hops[i].signature)) {
      return false;
    }
  }
  return true;
}

bool MndpEngine::verify_response(const MndpResponse& resp, MndpStats& stats) const {
  ++stats.signature_verifications;
  if (!oracle_->verify(resp.responder, resp.responder_sign_input(wire_),
                       resp.responder_signature)) {
    return false;
  }
  for (std::size_t i = 0; i < resp.hops.size(); ++i) {
    ++stats.signature_verifications;
    if (!oracle_->verify(resp.hops[i].id, resp.hop_sign_input(i, wire_),
                         resp.hops[i].signature)) {
      return false;
    }
  }
  return true;
}

bool MndpEngine::path_is_legitimate(const MndpRequest& req, NodeId holder,
                                    NodeId arrived_from) const {
  // The claimed neighbor lists must chain: hop_0 in L_source, hop_i in
  // L_{hop_{i-1}}, and the holder must appear in the last list. The message
  // must also have arrived from the last node on the claimed path.
  const std::vector<NodeId>* last_list = &req.source_neighbors;
  NodeId last_id = req.source;
  for (const HopRecord& hop : req.hops) {
    if (std::find(last_list->begin(), last_list->end(), hop.id) == last_list->end()) {
      return false;
    }
    last_list = &hop.neighbors;
    last_id = hop.id;
  }
  if (arrived_from != last_id) return false;
  return std::find(last_list->begin(), last_list->end(), holder) != last_list->end();
}

MndpStats MndpEngine::initiate(NodeState& initiator, std::span<NodeState> nodes) {
  MndpStats stats;
  const std::vector<NodeId> logical = initiator.logical_neighbors();
  if (logical.empty()) return stats;

  MndpRequest req;
  req.source = initiator.id();
  req.source_neighbors = logical;
  req.nonce = initiator.make_nonce(params_.l_n);
  req.nu = params_.nu;
  req.source_signature = initiator.key().sign(req.source_sign_input(wire_));
  ++stats.signatures_created;

  seen_[initiator.id()].insert(request_key(req.source, req.nonce));

  std::deque<PendingRequest> queue;
  const BitVector encoded = req.encode(wire_);
  for (const NodeId peer : logical) {
    ++stats.requests_sent;
    NodeState& target = nodes[raw(peer)];
    const auto rx = session_unicast(initiator, target, encoded, TxClass::SessionUnicast, stats);
    if (!rx) continue;
    auto decoded = MndpRequest::decode(*rx, wire_);
    if (!decoded) continue;
    queue.push_back(PendingRequest{peer, initiator.id(), std::move(*decoded)});
  }

  while (!queue.empty()) {
    PendingRequest item = std::move(queue.front());
    queue.pop_front();
    process_request(std::move(item), nodes, queue, stats);
  }

  JRSND_COUNT("mndp.initiations");
  JRSND_COUNT_N("mndp.requests_sent", stats.requests_sent);
  JRSND_COUNT_N("mndp.responses_sent", stats.responses_sent);
  JRSND_COUNT_N("mndp.sig_verifications", stats.signature_verifications);
  JRSND_COUNT_N("mndp.sigs_created", stats.signatures_created);
  JRSND_COUNT_N("mndp.requests_dropped", stats.requests_dropped);
  JRSND_COUNT_N("mndp.discoveries", stats.discoveries);
  JRSND_COUNT_N("mndp.false_positive_responses", stats.false_positive_responses);
  if (obs::tracing_enabled()) {
    obs::event_log().emit(
        obs::TraceEvent("mndp.initiate")
            .with("source", std::uint64_t{raw(initiator.id())})
            .with("requests", stats.requests_sent)
            .with("responses", stats.responses_sent)
            .with("verifications", stats.signature_verifications)
            .with("dropped", stats.requests_dropped)
            .with("discoveries", stats.discoveries)
            .with("max_hops", std::uint64_t{stats.max_hops_seen}));
  }
  return stats;
}

void MndpEngine::process_request(PendingRequest&& item, std::span<NodeState> nodes,
                                 std::deque<PendingRequest>& queue, MndpStats& stats) {
  NodeState& holder = nodes[raw(item.holder)];
  const MndpRequest& req = item.request;

  const std::uint64_t key = request_key(req.source, req.nonce);
  auto& seen = seen_[holder.id()];
  if (!seen.insert(key).second) return;  // duplicate copy

  const std::uint32_t traversed = req.hops_traversed();
  stats.max_hops_seen = std::max(stats.max_hops_seen, traversed);

  // Every signature in the request is verified before anything else.
  if (!verify_request(req, stats)) {
    ++stats.requests_dropped;
    return;
  }
  // Path legitimacy: the claimed lists chain from the source to us, and the
  // delivering node really is our logical neighbor (C in L_A AND L_B).
  if (!path_is_legitimate(req, holder.id(), item.arrived_from) ||
      !holder.knows(item.arrived_from)) {
    ++stats.requests_dropped;
    return;
  }

  // Respond when the source is new to us (we act as the paper's node B).
  if (holder.id() != req.source && !holder.knows(req.source)) {
    const bool physically_adjacent = topology_.are_neighbors(holder.id(), req.source);
    if (!gps_filter_ || physically_adjacent) {
      if (!physically_adjacent) ++stats.false_positive_responses;
      respond(holder, req, item.arrived_from, nodes, stats);
    }
  }

  // Forward while the hop budget lasts.
  if (traversed >= req.nu) return;

  // Exclusion: nodes already covered by any neighbor list in the request.
  std::unordered_set<NodeId> covered;
  covered.insert(req.source);
  covered.insert(holder.id());
  for (const NodeId id : req.source_neighbors) covered.insert(id);
  for (const HopRecord& hop : req.hops) {
    covered.insert(hop.id);
    for (const NodeId id : hop.neighbors) covered.insert(id);
  }

  MndpRequest extended = req;
  HopRecord record;
  record.id = holder.id();
  record.neighbors = holder.logical_neighbors();
  extended.hops.push_back(std::move(record));
  extended.hops.back().signature =
      holder.key().sign(extended.hop_sign_input(extended.hops.size() - 1, wire_));
  ++stats.signatures_created;

  const BitVector encoded = extended.encode(wire_);
  for (const NodeId next : holder.logical_neighbors()) {
    if (covered.contains(next)) continue;
    ++stats.requests_sent;
    NodeState& target = nodes[raw(next)];
    const auto rx = session_unicast(holder, target, encoded, TxClass::SessionUnicast, stats);
    if (!rx) continue;
    auto decoded = MndpRequest::decode(*rx, wire_);
    if (!decoded) continue;
    queue.push_back(PendingRequest{next, holder.id(), std::move(*decoded)});
  }
}

void MndpEngine::respond(NodeState& responder, const MndpRequest& req, NodeId reverse_next,
                         std::span<NodeState> nodes, MndpStats& stats) {
  assert(!req.hops.empty());  // direct logical neighbors never respond

  MndpResponse resp;
  resp.source = req.source;
  resp.via = reverse_next;
  resp.responder = responder.id();
  resp.responder_neighbors = responder.logical_neighbors();
  resp.nonce = responder.make_nonce(params_.l_n);
  resp.nu = req.nu;
  resp.responder_signature = responder.key().sign(resp.responder_sign_input(wire_));
  ++stats.signatures_created;
  ++stats.responses_sent;

  // B derives K_BA and C_BA = h_{K_BA}(n_B ^ n_A) and will broadcast
  // {HELLO, ID_B}_{C_BA} while the response travels (paper: for tau_h).
  const crypto::SymmetricKey key_ba = responder.key().shared_key(req.source);
  const BitVector session_ba =
      crypto::derive_session_code(key_ba, resp.nonce, req.nonce, params_.N);

  // Walk the reverse path: responder -> hops[k] -> ... -> hops[0] -> source.
  std::vector<NodeId> reverse_path;
  for (std::size_t i = req.hops.size(); i-- > 0;) reverse_path.push_back(req.hops[i].id);
  reverse_path.push_back(req.source);

  NodeState* carrier = &responder;
  MndpResponse current = resp;
  for (std::size_t leg = 0; leg < reverse_path.size(); ++leg) {
    NodeState& next = nodes[raw(reverse_path[leg])];
    const auto rx = session_unicast(*carrier, next, current.encode(wire_),
                                    TxClass::SessionUnicast, stats);
    if (!rx) return;  // reverse link lost (e.g. mobility); response dies
    auto decoded = MndpResponse::decode(*rx, wire_);
    if (!decoded) return;
    current = std::move(*decoded);

    const bool at_source = next.id() == req.source;
    if (!verify_response(current, stats)) return;
    if (at_source) break;

    // Intermediate node appends its own record and signature.
    HopRecord record;
    record.id = next.id();
    record.neighbors = next.logical_neighbors();
    current.hops.push_back(std::move(record));
    current.hops.back().signature =
        next.key().sign(current.hop_sign_input(current.hops.size() - 1, wire_));
    ++stats.signatures_created;
    carrier = &next;
  }

  // The source checks the path end: its relay must be a claimed neighbor of
  // the responder (the paper's "whether C in L_B"), then derives the same
  // session code and listens on it.
  NodeState& source = nodes[raw(req.source)];
  if (std::find(current.responder_neighbors.begin(), current.responder_neighbors.end(),
                current.via) == current.responder_neighbors.end()) {
    ++stats.requests_dropped;
    return;
  }
  const crypto::SymmetricKey key_ab = source.key().shared_key(current.responder);
  const BitVector session_ab =
      crypto::derive_session_code(key_ab, req.nonce, current.nonce, params_.N);
  assert(session_ab == session_ba);

  // Completion handshake over the fresh session code: B's HELLO physically
  // reaches A only if they really are physical neighbors.
  const dsss::SpreadCode session_pattern(session_ba);
  const TxCode session_tx{kInvalidCode, &session_pattern};

  const HelloMessage hello{responder.id()};
  const auto hello_rx = transmit_with_retry(responder.id(), source.id(), session_tx,
                                            TxClass::SessionHello, hello.encode(wire_), stats);
  if (!hello_rx || !HelloMessage::decode(*hello_rx, wire_)) return;

  // A accepts B and confirms; on receipt B accepts A.
  source.add_logical_neighbor(responder.id(), LogicalNeighbor{key_ab, session_ab, true});
  const ConfirmMessage confirm{source.id()};
  const auto confirm_rx = transmit_with_retry(source.id(), responder.id(), session_tx,
                                              TxClass::SessionConfirm, confirm.encode(wire_), stats);
  if (confirm_rx && ConfirmMessage::decode(*confirm_rx, wire_)) {
    responder.add_logical_neighbor(source.id(), LogicalNeighbor{key_ba, session_ba, true});
    ++stats.discoveries;
  }
}

MndpStats MndpEngine::run_round(std::span<NodeState> nodes, Rng& rng) {
  seen_.clear();
  std::vector<std::uint32_t> order(nodes.size());
  std::iota(order.begin(), order.end(), 0u);
  rng.shuffle(std::span<std::uint32_t>(order));

  MndpStats total;
  for (const std::uint32_t idx : order) {
    const MndpStats stats = initiate(nodes[idx], nodes);
    total.requests_sent += stats.requests_sent;
    total.responses_sent += stats.responses_sent;
    total.signature_verifications += stats.signature_verifications;
    total.signatures_created += stats.signatures_created;
    total.requests_dropped += stats.requests_dropped;
    total.discoveries += stats.discoveries;
    total.false_positive_responses += stats.false_positive_responses;
    total.max_hops_seen = std::max(total.max_hops_seen, stats.max_hops_seen);
    total.retransmissions += stats.retransmissions;
    total.timeouts += stats.timeouts;
  }
  return total;
}

}  // namespace jrsnd::core
