#include "core/handshake.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"
#include "obs/prof/perf_counters.hpp"

namespace jrsnd::core {

double RetryPolicy::nominal_backoff_s(std::uint32_t retx) const noexcept {
  if (retx == 0) return 0.0;
  double backoff = backoff_base_s;
  for (std::uint32_t i = 1; i < retx; ++i) {
    backoff *= backoff_factor;
    if (backoff >= backoff_max_s) break;
  }
  return std::min(backoff, backoff_max_s);
}

void RetryState::on_send() noexcept {
  if (completed_ || exhausted_) return;
  ++attempts_;
}

std::optional<Duration> RetryState::on_timeout() {
  if (completed_ || exhausted_ || !policy_->enabled()) return std::nullopt;
  if (retransmissions() >= policy_->max_retx) {
    exhausted_ = true;
    return std::nullopt;
  }
  // Grant retransmission number retransmissions()+1; draw jitter only now,
  // so exhausted/completed paths cost zero RNG draws.
  const double nominal = policy_->nominal_backoff_s(retransmissions() + 1);
  double factor = 1.0;
  if (policy_->jitter > 0.0) {
    factor += policy_->jitter * (2.0 * rng_->uniform01() - 1.0);
  }
  return Duration{std::max(0.0, nominal * factor)};
}

const char* handshake_stage_name(HandshakeStage stage) noexcept {
  switch (stage) {
    case HandshakeStage::Hello: return "hello";
    case HandshakeStage::Confirm: return "confirm";
    case HandshakeStage::Auth1: return "auth1";
    case HandshakeStage::Auth2: return "auth2";
    case HandshakeStage::Done: return "done";
    case HandshakeStage::Failed: return "failed";
  }
  return "?";
}

HandshakeStateMachine::HandshakeStateMachine(const RetryPolicy& policy, Rng& rng,
                                             double clock_rate) noexcept
    : policy_(policy),
      rng_(&rng),
      clock_rate_(clock_rate > 0.0 ? clock_rate : 1.0),
      retry_(policy_, rng) {}

void HandshakeStateMachine::on_send() noexcept {
  if (terminal()) return;
  retry_.on_send();
}

void HandshakeStateMachine::on_delivered() noexcept {
  if (terminal()) return;
  retry_.on_delivered();
  switch (stage_) {
    case HandshakeStage::Hello: stage_ = HandshakeStage::Confirm; break;
    case HandshakeStage::Confirm: stage_ = HandshakeStage::Auth1; break;
    case HandshakeStage::Auth1: stage_ = HandshakeStage::Auth2; break;
    case HandshakeStage::Auth2: stage_ = HandshakeStage::Done; break;
    case HandshakeStage::Done:
    case HandshakeStage::Failed: return;
  }
  if (stage_ != HandshakeStage::Done) {
    retry_ = RetryState(policy_, *rng_);
  }
}

std::optional<Duration> HandshakeStateMachine::on_timeout() {
  if (terminal()) return std::nullopt;
  ++timeouts_;
  // A timeout means we waited one full timeout interval, measured on the
  // local (possibly drifting) clock.
  elapsed_ += Duration{policy_.timeout_s * clock_rate_};
  auto backoff = retry_.on_timeout();
  if (!backoff) {
    // Flight-only (never JSONL): postmortems see which stage ran dry without
    // perturbing the deterministic trace stream.
    obs::flight_note("hs.exhausted", static_cast<std::uint64_t>(stage_));
    stage_ = HandshakeStage::Failed;
    return std::nullopt;
  }
  ++total_retransmissions_;
  elapsed_ += *backoff;
  obs::flight_note("hs.retx", total_retransmissions_);
  return backoff;
}

// --- HandshakeVerifier ------------------------------------------------------

namespace {

crypto::VerifyWire verify_wire_from(const WireConfig& wire) noexcept {
  crypto::VerifyWire out;
  out.l_t = wire.l_t;
  out.l_id = wire.l_id;
  out.l_n = wire.l_n;
  out.l_mac = wire.l_mac;
  out.auth_type = static_cast<std::uint32_t>(MessageType::Auth);
  return out;
}

}  // namespace

std::uint64_t HandshakeVerifier::PairSource::cache_key(std::uint32_t sender) const noexcept {
  const std::uint32_t self = raw(receiver->id());
  const std::uint32_t lo = std::min(self, sender);
  const std::uint32_t hi = std::max(self, sender);
  return (std::uint64_t{lo} << 32) | hi;
}

crypto::SymmetricKey HandshakeVerifier::PairSource::key_for(std::uint32_t sender) const {
  return receiver->shared_key(node_id(sender));
}

HandshakeVerifier::HandshakeVerifier(const WireConfig& wire)
    : queue_(verify_wire_from(wire)) {}

AuthVerdict HandshakeVerifier::verify_auth(const BitVector& frame, CodeId frame_code,
                                           CodeId expected_code,
                                           const crypto::IbcPrivateKey& receiver) {
  JRSND_PERF_REGION("dndp.verify.batch");
  source_.receiver = &receiver;
  const crypto::VerifyResult result =
      queue_.verify_now(frame, raw(frame_code), raw(expected_code), source_);
  AuthVerdict verdict;
  verdict.stage = result.stage;
  if (result.stage != crypto::VerifyStage::RejectLength &&
      result.stage != crypto::VerifyStage::RejectFormat) {
    verdict.sender = node_id(result.sender);
  }
  if (result.stage == crypto::VerifyStage::Accept) {
    const crypto::VerifyWire& w = queue_.wire();
    verdict.nonce = frame.slice(std::size_t{w.l_t} + w.l_id, w.l_n);
    verdict.key = result.key;
  }
  return verdict;
}

std::size_t HandshakeVerifier::verify_auth_batch(std::span<const BitVector> frames,
                                                 CodeId frame_code, CodeId expected_code,
                                                 const crypto::IbcPrivateKey& receiver,
                                                 std::vector<crypto::VerifyResult>& out) {
  JRSND_PERF_REGION("dndp.verify.batch");
  source_.receiver = &receiver;
  queue_.reserve(frames.size());
  for (const BitVector& frame : frames) {
    queue_.push(frame, raw(frame_code), raw(expected_code));
  }
  return queue_.drain(source_, out);
}

}  // namespace jrsnd::core
