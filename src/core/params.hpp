// JR-SND system parameters — Table I of the paper plus the simulation
// environment of §VI-B. Every experiment starts from defaults() and
// overrides the swept parameter.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "core/handshake.hpp"
#include "dsss/timing.hpp"
#include "predist/authority.hpp"

namespace jrsnd::core {

struct Params {
  // --- network / pre-distribution -------------------------------------
  std::uint32_t n = 2000;  ///< number of MANET nodes
  std::uint32_t m = 100;   ///< spread codes per node
  std::uint32_t l = 40;    ///< max holders per code
  std::uint32_t q = 20;    ///< compromised nodes

  // --- DSSS ------------------------------------------------------------
  std::size_t N = 512;        ///< spread-code length (chips)
  double R = 22e6;            ///< chip rate (chips/s)
  double rho = 1e-11;         ///< correlation cost (s/bit)
  double tau = 0.15;          ///< correlation decision threshold
  double mu = 1.0;            ///< ECC redundancy parameter

  // --- protocol --------------------------------------------------------
  std::uint32_t nu = 2;       ///< M-NDP hop limit
  std::uint32_t z = 8;        ///< jammer's parallel signals
  std::uint32_t gamma = 10;   ///< DoS revocation threshold
  /// Parallel receive/correlation chains (paper future work; 1 = paper).
  std::uint32_t rx_chains = 1;

  /// Handshake retry/timeout/backoff discipline (robustness extension; the
  /// default disabled policy reproduces the paper's one-shot handshakes
  /// bit-for-bit — see docs/robustness.md).
  RetryPolicy retry;

  // --- message field lengths (bits) ------------------------------------
  std::uint32_t l_t = 5;      ///< message-type identifier
  std::uint32_t l_id = 16;    ///< node ID
  std::uint32_t l_n = 20;     ///< nonce
  std::uint32_t l_mac = 160;  ///< MAC tag (Table I row "l_f")
  std::uint32_t l_nu = 4;     ///< hop-limit field
  std::uint32_t l_sig = 672;  ///< ID-based signature

  // --- cryptographic timing (adopted from [13]) -------------------------
  double t_key = 11e-3;   ///< ID-based shared-key computation (s)
  double t_sig = 5.7e-3;  ///< signature generation (s)
  double t_ver = 35.5e-3; ///< signature verification (s)

  // --- simulation environment (§VI-B) ----------------------------------
  double field_width = 5000.0;   ///< m
  double field_height = 5000.0;  ///< m
  double tx_range = 300.0;       ///< transmission radius a (m)
  std::uint32_t runs = 100;      ///< averaging runs per data point

  /// Table-I defaults.
  [[nodiscard]] static Params defaults() { return Params{}; }

  // --- derived quantities ------------------------------------------------

  /// HELLO payload bits: l_t + l_id.
  [[nodiscard]] std::uint32_t hello_payload_bits() const noexcept { return l_t + l_id; }

  /// Idealized coded HELLO length l_h = (1+mu)(l_t + l_id).
  [[nodiscard]] double l_h() const noexcept {
    return (1.0 + mu) * static_cast<double>(hello_payload_bits());
  }

  /// Idealized coded auth-message length l_f = (1+mu)(l_id + l_n + l_mac).
  [[nodiscard]] double l_f() const noexcept {
    return (1.0 + mu) * static_cast<double>(l_id + l_n + l_mac);
  }

  /// Pre-distribution parameters derived from (n, m, l, N).
  [[nodiscard]] predist::PredistParams predist() const noexcept {
    predist::PredistParams p;
    p.node_count = n;
    p.codes_per_node = m;
    p.holders_per_code = l;
    p.code_length_chips = N;
    return p;
  }

  /// Buffering/processing timing model derived from (N, R, rho, m, l_h).
  [[nodiscard]] dsss::TimingInputs timing() const noexcept {
    dsss::TimingInputs t;
    t.code_length_chips = N;
    t.chip_rate_bps = R;
    t.rho_seconds_per_bit = rho;
    t.codes_per_node = m;
    t.hello_coded_bits = static_cast<std::size_t>(l_h());
    t.rx_chains = rx_chains;
    return t;
  }

  /// Pool size s = ceil(n/l) * m.
  [[nodiscard]] std::uint32_t pool_size() const noexcept { return predist().pool_size(); }

  /// One-line textual summary (bench headers).
  [[nodiscard]] std::string summary() const;
};

}  // namespace jrsnd::core
