// The payoff of discovery: an authenticated, encrypted, anti-jamming duplex
// channel between two logical neighbors.
//
// After D-NDP/M-NDP, A and B share the pairwise key K_AB and the secret
// session spread code C_AB. SecureChannel runs application payloads over
// that state: plaintext -> seal (encrypt-then-MAC, per-direction keys,
// replay counters) -> bits -> spread with C_AB on the PHY -> unseal at the
// peer. The jammer cannot target the transmission (C_AB is a fresh N-bit
// secret) and cannot forge or replay payloads (the seal rejects both).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/jrsnd_node.hpp"
#include "core/phy_model.hpp"
#include "crypto/stream.hpp"

namespace jrsnd::core {

class SecureChannel {
 public:
  /// Both nodes must already be logical neighbors (have completed
  /// discovery); throws std::invalid_argument otherwise.
  SecureChannel(NodeState& a, NodeState& b, PhyModel& phy);

  /// Sends `payload` from `from` (must be one of the two endpoints) to the
  /// other end. Returns the bytes the peer recovered and accepted, or
  /// nullopt if the transmission was lost or the seal rejected it.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> send(
      NodeId from, std::span<const std::uint8_t> payload);

  /// String convenience.
  [[nodiscard]] std::optional<std::string> send_text(NodeId from, const std::string& text);

  [[nodiscard]] std::uint64_t messages_sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t messages_accepted() const noexcept { return accepted_; }
  [[nodiscard]] std::uint64_t messages_rejected() const noexcept { return rejected_; }

  /// Ratchets both directions to generation + 1: the new traffic keys are
  /// PRF(old root, "rekey"), the old root is discarded, and counters reset.
  /// An adversary who later extracts the current keys cannot decrypt
  /// traffic sealed under earlier generations (forward secrecy for the
  /// session; both ends must rekey in lockstep, e.g. every K messages).
  void rekey();

  [[nodiscard]] std::uint32_t generation() const noexcept { return generation_; }

 private:
  struct Endpoint {
    NodeState* node = nullptr;
    crypto::Sealer sealer;
    crypto::Unsealer unsealer;
    Endpoint(NodeState* n, const crypto::SymmetricKey& key, const std::string& tx_dir,
             const std::string& rx_dir)
        : node(n), sealer(key, tx_dir), unsealer(key, rx_dir) {}
  };

  PhyModel& phy_;
  dsss::SpreadCode session_pattern_;
  crypto::SymmetricKey root_key_;
  std::uint32_t generation_ = 0;
  Endpoint a_;
  Endpoint b_;
  std::uint64_t sent_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace jrsnd::core
