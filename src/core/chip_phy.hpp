// Chip-accurate PHY: the full DSSS + ECC pipeline per transmission.
//
// Every transmit() actually
//   1. Reed-Solomon-expands the payload (rate 1/(1+mu), interleaved),
//   2. spreads it with the given code into a chip sequence,
//   3. places it at a random chip offset in a channel window,
//   4. lets the jammer (if it elects to, per its message-level policy)
//      superpose synchronized jamming chips covering more than the ECC
//      tolerance with the compromised code,
//   5. runs the receiver: sliding-window synchronization against its
//      candidate codes (its whole code set for HELLOs, the monitored code
//      otherwise), per-bit correlation-threshold de-spreading with erasure
//      marking, and RS errata decoding.
//
// It exists to validate AbstractPhy: integration tests run the same D-NDP
// handshake over both and check that outcomes agree (jam -> fail,
// no jam -> success). It is O(window * codes * N) per message.
//
// Per-transmit precomputation is cached: the receiver's codebook arrives as
// a PreparedCodebook (ShiftTables built once, reused across transmissions
// and every recover-and-rescan iteration), the monitored-code scan keeps its
// own single-code PreparedCodebook refreshed only when the code changes, and
// all working buffers (coded bits, chips, channel window, received chips,
// sync hit, ECC workspaces) live in a per-instance scratch arena — the
// transmit_into() hot path performs zero heap allocations in the steady
// state on a clean channel.
#pragma once

#include <functional>
#include <vector>

#include "adversary/jammer.hpp"
#include "common/rng.hpp"
#include "core/params.hpp"
#include "core/phy_model.hpp"
#include "dsss/chip_channel.hpp"
#include "dsss/prepared_codebook.hpp"
#include "dsss/sliding_window.hpp"
#include "ecc/ecc_codec.hpp"
#include "sim/topology.hpp"

namespace jrsnd::core {

class ChipPhy final : public PhyModel {
 public:
  /// `receiver_codebook(node)` returns the prepared spread codes the node
  /// scans HELLO buffers with (its non-revoked pool codes). Returning a
  /// reference keeps the per-HELLO cost at a lookup — the prepared form owns
  /// the cached ShiftTables, so the callback must return a reference that
  /// outlives the transmit call (see dsss::NodeCodebookCache).
  using Codebook = std::function<const dsss::PreparedCodebook&(NodeId)>;

  ChipPhy(const Params& params, const sim::Topology& topology, const adversary::Jammer& jammer,
          Codebook receiver_codebook, Rng& rng);

  void begin_subsession(NodeId a, NodeId b, CodeId code) override;

  [[nodiscard]] std::optional<BitVector> transmit(NodeId from, NodeId to, TxCode code,
                                                  TxClass cls, const BitVector& payload) override;

  /// transmit() into a caller-owned payload buffer: returns whether the
  /// receiver recovered the message, writing the decoded payload into `out`
  /// on success. Identical results and identical rng draws to transmit();
  /// this is the allocation-free form (steady state, clean channel).
  [[nodiscard]] bool transmit_into(NodeId from, NodeId to, TxCode code, TxClass cls,
                                   const BitVector& payload, BitVector& out);

  /// Jam profile when the jammer strikes: it identifies the code during the
  /// first `start` fraction of the message (paper: 1/(1+mu)) and jams the
  /// following `coverage` fraction. The default start=0.25, coverage=0.75
  /// leaves the head intact for synchronization but corrupts far beyond the
  /// ECC capability, so a strike reliably defeats decoding.
  void set_jam_profile(double start, double coverage) noexcept {
    jam_start_ = start;
    jam_coverage_ = coverage;
  }

  [[nodiscard]] std::uint64_t chip_messages() const noexcept { return messages_; }
  [[nodiscard]] std::uint64_t chip_jams() const noexcept { return jams_; }

 private:
  bool transmit_pipeline(NodeId from, NodeId to, TxCode code, TxClass cls,
                         const BitVector& payload, BitVector& out);

  /// The transmit scratch arena: every per-message working buffer, reused
  /// across calls so steady-state transmissions stop heap-allocating. One
  /// per ChipPhy — the instance is single-threaded by construction (it
  /// mutates a shared Rng).
  struct TransmitScratch {
    BitVector coded;             ///< ECC-expanded payload
    BitVector chips;             ///< spread chip sequence
    BitVector flipped;           ///< inverted code pattern (spread_into)
    dsss::ChipChannel channel;   ///< superposition window
    BitVector received;          ///< receiver's hard-decision chips
    dsss::SyncHit hit;           ///< sync result incl. despread buffers
    ecc::EccCodec::Scratch ecc;  ///< RS block workspaces
  };

  const Params& params_;
  const sim::Topology& topology_;
  const adversary::Jammer& jammer_;
  Codebook codebook_;
  Rng& rng_;
  ecc::EccCodec codec_;
  double jam_start_ = 0.25;
  double jam_coverage_ = 0.75;

  // Single-code candidate set for monitored (non-HELLO) messages, refreshed
  // only when the monitored code actually changes.
  dsss::PreparedCodebook monitored_;
  TransmitScratch scratch_;

  // Sub-session fates, mirroring AbstractPhy so the two planes agree on the
  // grouped follow-up jamming semantics of Theorem 1.
  bool hello_jammed_ = false;
  bool followups_jammed_ = false;

  std::uint64_t messages_ = 0;
  std::uint64_t jams_ = 0;
};

}  // namespace jrsnd::core
