// The network-scale discovery experiment (paper §VI-B).
//
// One run = one seeded world: 2000 nodes placed uniformly in the 5000x5000 m
// field, spread codes pre-distributed, q nodes compromised, a jammer armed,
// and the real D-NDP engine executed over every physical-neighbor pair.
// M-NDP is then evaluated either
//   * by bounded-depth reachability on the logical graph D-NDP built —
//     provably the outcome of the paper's pruned flood for honest nodes
//     (the fast path used for the 2000-node figures), or
//   * by the full MndpEngine with its signature chains (validation mode,
//     used by tests and bench/analysis_vs_sim on smaller networks).
//
// Figures report averages over `params.runs` seeds; every run is exactly
// reproducible from (base_seed + run index).
#pragma once

#include <cstdint>
#include <optional>

#include "core/metrics.hpp"
#include "core/mndp.hpp"
#include "core/params.hpp"
#include "fault/fault_plan.hpp"

namespace jrsnd::core {

enum class JammerKind { None, Random, Reactive, Intelligent };

[[nodiscard]] const char* jammer_name(JammerKind kind) noexcept;

struct ExperimentConfig {
  Params params;
  std::uint64_t base_seed = 1;
  JammerKind jammer = JammerKind::Reactive;  ///< paper shows reactive (worst case)
  bool redundancy = true;      ///< D-NDP x-fold sub-session redundancy
  bool full_mndp = false;      ///< run the complete M-NDP engine (slower)
  bool gps_filter = false;     ///< M-NDP false-positive suppression
  std::uint32_t mndp_rounds = 1;  ///< logical-graph closure iterations
  /// When set, every run wraps its PHY in a FaultyPhy applying this plan
  /// (salted with the run seed, so faults decorrelate across runs but stay
  /// exactly reproducible). Unset — the historical fault-free pipeline.
  std::optional<fault::FaultPlan> faults;
};

struct RunResult {
  std::size_t physical_pairs = 0;
  std::size_t dndp_discovered = 0;
  std::size_t mndp_recovered = 0;  ///< D-NDP-failed pairs recovered by M-NDP
  std::size_t compromised_codes = 0;
  double avg_degree = 0.0;

  double p_dndp = 0.0;   ///< dndp_discovered / physical_pairs
  /// Standalone M-NDP success: fraction of ALL physical pairs connected by
  /// a <= nu-hop logical path that does not use their own direct link —
  /// the quantity the paper plots as M-NDP's P-hat (monotone in m).
  double p_mndp = 0.0;
  /// Conditional recovery: mndp_recovered / (physical_pairs - dndp_discovered).
  double p_mndp_conditional = 0.0;
  bool p_mndp_defined = false;  ///< false when D-NDP left no failed pairs
  double p_jrsnd = 0.0;  ///< (dndp + mndp) / physical_pairs

  double latency_dndp_s = 0.0;   ///< mean sampled D-NDP latency
  double latency_mndp_s = 0.0;   ///< Theorem 4 at the configured nu
  double latency_jrsnd_s = 0.0;  ///< max of the two (paper §VI-A3)

  MndpStats mndp_stats;  ///< populated in full_mndp mode

  std::uint64_t dndp_retransmissions = 0;  ///< retries the hardened D-NDP spent
  std::uint64_t dndp_timeouts = 0;         ///< attempt timeouts that expired
  std::uint64_t faults_injected = 0;       ///< total faults the plan landed
};

struct PointResult {
  Stat p_dndp;
  Stat p_mndp;              ///< standalone (the paper's plotted series)
  Stat p_mndp_conditional;  ///< recovery rate over D-NDP-failed pairs
  Stat p_jrsnd;
  Stat latency_dndp;
  Stat latency_mndp;
  Stat latency_jrsnd;
  Stat degree;
  Stat compromised_codes;
};

class DiscoverySimulator {
 public:
  explicit DiscoverySimulator(ExperimentConfig config);

  /// One seeded world; fully deterministic in `seed`.
  [[nodiscard]] RunResult run_once(std::uint64_t seed) const;

  /// config.params.runs seeded runs, aggregated.
  [[nodiscard]] PointResult run_all() const;

  [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }

 private:
  ExperimentConfig config_;
};

}  // namespace jrsnd::core
