// Message-level PHY applying Theorem 1's jamming-success model.
//
// Delivery succeeds iff the endpoints are physical neighbors and the jammer
// does not defeat the message. The jammer decision follows the adversary
// model: per D-NDP sub-session, the HELLO is jammed with the jammer's
// per-message probability and the three follow-ups share a single
// group-level jam event (the paper's beta'). Session-code transmissions are
// unjammable for a computationally bounded adversary (the code is a fresh
// N-bit secret).
#pragma once

#include <optional>
#include <unordered_map>

#include "adversary/jammer.hpp"
#include "common/rng.hpp"
#include "core/phy_model.hpp"
#include "sim/topology.hpp"

namespace jrsnd::core {

class AbstractPhy final : public PhyModel {
 public:
  AbstractPhy(const sim::Topology& topology, const adversary::Jammer& jammer, Rng& rng);

  void begin_subsession(NodeId a, NodeId b, CodeId code) override;

  [[nodiscard]] std::optional<BitVector> transmit(NodeId from, NodeId to, TxCode code,
                                                  TxClass cls, const BitVector& payload) override;

  /// Delivery counters (diagnostics for tests/benches).
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t jammed() const noexcept { return jammed_; }
  [[nodiscard]] std::uint64_t out_of_range() const noexcept { return out_of_range_; }

 private:
  const sim::Topology& topology_;
  const adversary::Jammer& jammer_;
  Rng& rng_;

  // Fate of the current sub-session (set by begin_subsession).
  bool hello_jammed_ = false;
  bool followups_jammed_ = false;

  std::uint64_t delivered_ = 0;
  std::uint64_t jammed_ = 0;
  std::uint64_t out_of_range_ = 0;
};

}  // namespace jrsnd::core
