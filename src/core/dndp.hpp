// D-NDP: the Direct Neighbor Discovery Protocol (paper §V-B).
//
// Four-message handshake between an initiator A and a responder B that share
// at least one non-revoked pool code:
//
//   1. A -> * : {HELLO, ID_A}_{C_i}          (broadcast under all m codes)
//   2. B -> A : {CONFIRM, ID_B}_{C_i}
//   3. A -> B : {ID_A, n_A, f_{K_AB}(ID_A|n_A)}_{C_i}
//   4. B -> A : {ID_B, n_B, f_{K_BA}(ID_B|n_B)}_{C_i}
//
// with K_AB = K_BA the non-interactive ID-based pairwise key. On success
// both sides derive the session spread code C_AB = h_{K_AB}(n_A ^ n_B) and
// record each other as authenticated logical neighbors.
//
// Redundancy design: when x >= 2 codes are shared, all x sub-sessions run
// the full exchange (same nonces, same resulting session code); discovery
// fails only if every sub-session fails. The engine executes the real
// cryptography — nonces, MAC computation/verification, session-code
// derivation — over whichever PhyModel it is given.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/handshake.hpp"
#include "core/jrsnd_node.hpp"
#include "core/messages.hpp"
#include "core/params.hpp"
#include "core/phy_model.hpp"

namespace jrsnd::core {

struct DndpResult {
  bool discovered = false;
  std::optional<CodeId> winning_code;  ///< pool code of the first complete sub-session
  std::uint32_t shared_codes = 0;      ///< x
  std::uint32_t hellos_delivered = 0;  ///< copies of the HELLO B recovered
  std::uint32_t subsessions_completed = 0;
  bool mac_failure = false;  ///< a MAC failed verification (tampering)
  std::uint32_t retransmissions = 0;  ///< retries spent across all sub-sessions
  std::uint32_t timeouts = 0;         ///< attempt timeouts that expired
};

class DndpEngine {
 public:
  /// `redundancy` mirrors the paper's x-fold sub-session design; disabling
  /// it reproduces the naive pick-one-code variant the "intelligent attack"
  /// of §V-B defeats (ablated in bench/ablation_redundancy).
  ///
  /// `retry_seed` seeds the backoff-jitter Rng (used only when
  /// `params.retry` is enabled — the default policy makes the engine
  /// bit-identical to the unhardened one). `clock`, when given, scales the
  /// initiator's perceived timeouts by its local clock rate (fault layer).
  DndpEngine(const Params& params, PhyModel& phy, bool redundancy = true,
             std::uint64_t retry_seed = 0, const HandshakeClock* clock = nullptr);

  /// Runs the handshake with `a` as initiator. Updates both nodes' logical
  /// neighbor tables (and nothing else) on success.
  DndpResult run(NodeState& a, NodeState& b);

 private:
  /// Executes messages 2-4 of one sub-session on code `code`; returns the
  /// session information derived, or nullopt if any message is lost.
  struct SubsessionOutcome {
    crypto::SymmetricKey key_ab{};
    BitVector session_code;
  };
  [[nodiscard]] std::optional<SubsessionOutcome> run_subsession(
      NodeState& a, NodeState& b, CodeId code, const BitVector& nonce_a,
      const BitVector& nonce_b, HandshakeStateMachine& hs, DndpResult& result);

  /// One handshake message with the retry discipline: on transmission loss,
  /// waits out the stage timeout, re-arms the sub-session's jamming fate
  /// (each retransmission is a fresh radio event), and retransmits until
  /// delivery or budget exhaustion. With retries disabled this is exactly
  /// one `phy_.transmit` — no extra draws, no extra counters.
  [[nodiscard]] std::optional<BitVector> transmit_with_retry(
      HandshakeStateMachine& hs, NodeId a, NodeId b, CodeId code, NodeId from,
      NodeId to, const TxCode& tx, TxClass cls, const BitVector& payload);

  const Params& params_;
  WireConfig wire_;
  /// Staged early-reject AUTH verification (length -> format -> code -> MAC)
  /// with per-peer key-schedule caching — the handshake-flood hardening.
  /// Decisions are bit-identical to the old decode + verify pair.
  HandshakeVerifier verifier_;
  PhyModel& phy_;
  bool redundancy_;
  Rng retry_rng_;
  const HandshakeClock* clock_;
  std::uint64_t trace_salt_;  ///< retry_seed; keys per-attempt trace ids
  std::uint64_t attempts_ = 0;
};

}  // namespace jrsnd::core
