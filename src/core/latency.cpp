#include "core/latency.hpp"

#include <algorithm>

#include "core/analysis.hpp"

namespace jrsnd::core {

LatencyModel::LatencyModel(const Params& params)
    : params_(params), timing_(params.timing()) {}

Duration LatencyModel::sample_dndp(Rng& rng) const {
  const double t_p = timing_.processing_time().seconds();
  const double t_h = timing_.hello_time().seconds();
  const double lambda = timing_.lambda();

  // Identification: B's residual processing + B's scan to the HELLO, A's
  // residual processing + A's scan to the CONFIRM (paper Thm 2 proof).
  const double t_rb = rng.uniform_real(0.0, t_p);
  const double t_db = rng.uniform_real(0.0, t_p);
  const double t_ra = rng.uniform_real(0.0, t_p);
  const double t_da = rng.uniform_real(0.0, lambda * t_h);

  // Authentication: two coded auth messages + two key computations.
  const double t_auth =
      2.0 * static_cast<double>(params_.N) * params_.l_f() / params_.R + 2.0 * params_.t_key;

  return Duration(t_rb + t_db + t_ra + t_da + t_auth);
}

Duration LatencyModel::expected_dndp() const {
  return Duration(theorem2_dndp_latency(params_));
}

Duration LatencyModel::mndp(double g, std::uint32_t hops) const {
  Params at_hops = params_;
  at_hops.nu = std::max<std::uint32_t>(hops, 1);
  return Duration(theorem4_mndp_latency(at_hops, g));
}

Duration LatencyModel::combined(Duration dndp, Duration mndp_latency) const {
  return std::max(dndp, mndp_latency);
}

}  // namespace jrsnd::core
