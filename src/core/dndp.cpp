#include "core/dndp.hpp"

#include <algorithm>

#include "crypto/session_code.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/span.hpp"

namespace jrsnd::core {

namespace {

std::vector<CodeId> intersect_sorted(const std::vector<CodeId>& a, const std::vector<CodeId>& b) {
  std::vector<CodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

WireConfig wire_from_params(const Params& params) noexcept {
  WireConfig wire;
  wire.l_t = params.l_t;
  wire.l_id = params.l_id;
  wire.l_n = params.l_n;
  wire.l_mac = params.l_mac;
  wire.l_nu = params.l_nu;
  wire.l_sig = params.l_sig;
  return wire;
}

}  // namespace

DndpEngine::DndpEngine(const Params& params, PhyModel& phy, bool redundancy,
                       std::uint64_t retry_seed, const HandshakeClock* clock)
    : params_(params),
      wire_(wire_from_params(params)),
      verifier_(wire_),
      phy_(phy),
      redundancy_(redundancy),
      retry_rng_(retry_seed ^ 0xD1B54A32D192ED03ULL),
      clock_(clock),
      trace_salt_(retry_seed) {}

std::optional<BitVector> DndpEngine::transmit_with_retry(
    HandshakeStateMachine& hs, NodeId a, NodeId b, CodeId code, NodeId from,
    NodeId to, const TxCode& tx, TxClass cls, const BitVector& payload) {
  hs.on_send();
  auto rx = phy_.transmit(from, to, tx, cls, payload);
  if (rx) {
    hs.on_delivered();
    return rx;
  }
  if (!params_.retry.enabled()) return std::nullopt;
  while (true) {
    JRSND_COUNT("dndp.timeout.expired");
    const auto backoff = hs.on_timeout();
    if (!backoff) {
      JRSND_COUNT("dndp.timeout.exhausted");
      // Exhausting the retry budget IS the failure when retries are on,
      // except when the peer is inside an injected crash window — retrying
      // into a dead node is a crash loss, not a timing one.
      const obs::LossStage last = obs::take_loss_reason();
      obs::set_loss_reason(last == obs::LossStage::Crash ? last : obs::LossStage::Timeout);
      return std::nullopt;
    }
    JRSND_COUNT("dndp.retx.attempts");
    // Re-arm the sub-session's jamming fate: a retransmission after backoff
    // is a fresh radio event, not a replay of the already-drawn loss.
    phy_.begin_subsession(a, b, code);
    hs.on_send();
    rx = phy_.transmit(from, to, tx, cls, payload);
    if (rx) {
      JRSND_COUNT("dndp.retx.recovered");
      hs.on_delivered();
      return rx;
    }
  }
}

std::optional<DndpEngine::SubsessionOutcome> DndpEngine::run_subsession(
    NodeState& a, NodeState& b, CodeId code, const BitVector& nonce_a,
    const BitVector& nonce_b, HandshakeStateMachine& hs, DndpResult& result) {
  const TxCode tx{code, &a.code_pattern(code)};
  SubsessionOutcome outcome;

  // 2. B -> A: {CONFIRM, ID_B}_{C_i}.
  const ConfirmMessage confirm{b.id()};
  const auto confirm_rx = transmit_with_retry(hs, a.id(), b.id(), code, b.id(),
                                              a.id(), tx, TxClass::Confirm,
                                              confirm.encode(wire_));
  if (!confirm_rx) return std::nullopt;
  const auto confirm_decoded = ConfirmMessage::decode(*confirm_rx, wire_);
  if (!confirm_decoded) {
    result.mac_failure = true;  // malformed after successful delivery: tampering
    obs::set_loss_reason(obs::LossStage::Corrupt);
    return std::nullopt;
  }
  const NodeId id_b = confirm_decoded->sender;  // A now knows B's claimed ID

  // 3. A -> B: {ID_A, n_A, f_{K_AB}(ID_A | n_A)}_{C_i}.
  const crypto::SymmetricKey key_ab = a.key().shared_key(id_b);
  const AuthMessage auth1 = AuthMessage::make(a.id(), nonce_a, key_ab, wire_);
  const auto auth1_rx = transmit_with_retry(hs, a.id(), b.id(), code, a.id(),
                                            b.id(), tx, TxClass::Auth,
                                            auth1.encode(wire_));
  if (!auth1_rx) return std::nullopt;

  // B verifies through the staged early-reject pipeline (length -> format ->
  // code -> MAC, per-peer key schedule cached): equal MACs prove A holds the
  // key the authority issued for ID_A (mutual authentication, paper §V-B).
  // Only a MAC-stage reject is attributed to tampering; a frame that fails
  // the cheap stages is a decode failure, exactly as before.
  const AuthVerdict auth1_v = verifier_.verify_auth(*auth1_rx, code, code, b.key());
  if (!auth1_v.accepted()) {
    if (auth1_v.mac_rejected()) result.mac_failure = true;
    obs::set_loss_reason(obs::LossStage::Corrupt);
    return std::nullopt;
  }
  const crypto::SymmetricKey key_ba = auth1_v.key;

  // 4. B -> A: {ID_B, n_B, f_{K_BA}(ID_B | n_B)}_{C_i}.
  const AuthMessage auth2 = AuthMessage::make(b.id(), nonce_b, key_ba, wire_);
  const auto auth2_rx = transmit_with_retry(hs, a.id(), b.id(), code, b.id(),
                                            a.id(), tx, TxClass::Auth,
                                            auth2.encode(wire_));
  if (!auth2_rx) return std::nullopt;
  const AuthVerdict auth2_v = verifier_.verify_auth(*auth2_rx, code, code, a.key());
  if (!auth2_v.accepted()) {
    if (auth2_v.mac_rejected()) result.mac_failure = true;
    obs::set_loss_reason(obs::LossStage::Corrupt);
    return std::nullopt;
  }

  // Both ends derive C_AB = h_{K}(n_A ^ n_B); XOR makes it symmetric.
  outcome.key_ab = key_ab;
  outcome.session_code = crypto::derive_session_code(key_ab, auth1_v.nonce,
                                                     auth2_v.nonce, params_.N);
  return outcome;
}

DndpResult DndpEngine::run(NodeState& a, NodeState& b) {
  DndpResult result;
  JRSND_COUNT("dndp.runs");

  // One discovery attempt = one trace. The id is a pure function of the
  // engine's seed and the pair, so serial and parallel Monte-Carlo runs of
  // the same experiment produce identical trace ids.
  obs::Span root("dndp.attempt", obs::derive_trace_id(trace_salt_, raw(a.id()), raw(b.id()),
                                                      attempts_++));
  root.with_u64("a", raw(a.id()));
  root.with_u64("b", raw(b.id()));
  (void)obs::take_loss_reason();  // start the attempt with a clean channel

  std::vector<CodeId> shared = intersect_sorted(a.usable_codes(), b.usable_codes());
  result.shared_codes = static_cast<std::uint32_t>(shared.size());
  if (shared.empty()) {
    JRSND_COUNT("dndp.no_shared_code");
    JRSND_COUNT("dndp.failed");
    root.set_ok(false);
    root.set_loss(obs::LossStage::NoSharedCode);
    return result;
  }

  // Session nonces are drawn once; all sub-sessions establish the same
  // session code (paper's redundancy design).
  const BitVector nonce_a = a.make_nonce(params_.l_n);
  const BitVector nonce_b = b.make_nonce(params_.l_n);

  // The naive (non-redundant) variant lets B pick one random code among the
  // HELLOs it received; iterating a random permutation and stopping at the
  // first delivered HELLO selects uniformly among them.
  if (!redundancy_) b.rng().shuffle(std::span<CodeId>(shared));

  // The retry discipline measures timeouts on the initiator's local clock;
  // with no fault layer attached every clock runs at the nominal rate.
  const double clock_rate = clock_ ? clock_->rate(a.id()) : 1.0;

  std::optional<SubsessionOutcome> winner;
  std::uint32_t attempted = 0;
  obs::LossStage last_loss = obs::LossStage::None;
  Duration elapsed_total{0.0};
  for (const CodeId code : shared) {
    JRSND_COUNT("dndp.subsessions.started");
    ++attempted;
    phy_.begin_subsession(a.id(), b.id(), code);
    HandshakeStateMachine hs(params_.retry, retry_rng_, clock_rate);

    obs::Span sub("dndp.subsession");
    sub.with_u64("code", raw(code));
    bool sub_ok = false;

    // 1. A -> *: {HELLO, ID_A}_{C_i}. (The broadcast also uses A's other
    // codes; only shared ones can reach B, so we model those.)
    const HelloMessage hello{a.id()};
    const TxCode tx{code, &a.code_pattern(code)};
    const auto hello_rx = transmit_with_retry(hs, a.id(), b.id(), code, a.id(),
                                              b.id(), tx, TxClass::Hello,
                                              hello.encode(wire_));
    std::optional<HelloMessage> hello_decoded;
    if (hello_rx) {
      hello_decoded = HelloMessage::decode(*hello_rx, wire_);
      if (!hello_decoded) obs::set_loss_reason(obs::LossStage::Corrupt);
    }
    if (hello_decoded) {
      ++result.hellos_delivered;
      const auto outcome = run_subsession(a, b, code, nonce_a, nonce_b, hs, result);
      if (outcome.has_value()) {
        ++result.subsessions_completed;
        sub_ok = true;
        if (!winner.has_value()) {
          winner = outcome;
          result.winning_code = code;
        }
      }
    }
    sub.set_ok(sub_ok);
    if (!sub_ok) {
      // The stage that killed this sub-session; the last failed sub-session
      // determines the attempt-level attribution.
      const obs::LossStage sub_loss = obs::take_loss_reason();
      last_loss = sub_loss != obs::LossStage::None ? sub_loss : obs::LossStage::DecodeFail;
      sub.set_loss(last_loss);
    }
    sub.set_dur(hs.elapsed().seconds());
    elapsed_total += hs.elapsed();
    result.retransmissions += hs.retransmissions();
    result.timeouts += hs.timeouts();
    // The naive variant commits to the first delivered HELLO's code,
    // succeed or fail — exactly what the "intelligent attack" exploits.
    if (hello_decoded && !redundancy_) break;
  }

  if (winner.has_value()) {
    result.discovered = true;
    LogicalNeighbor for_a{winner->key_ab, winner->session_code, false};
    LogicalNeighbor for_b{winner->key_ab, winner->session_code, false};
    a.add_logical_neighbor(b.id(), std::move(for_a));
    b.add_logical_neighbor(a.id(), std::move(for_b));
  }

  root.set_ok(result.discovered);
  root.set_dur(elapsed_total.seconds());
  if (!result.discovered) {
    root.set_loss(last_loss != obs::LossStage::None ? last_loss : obs::LossStage::DecodeFail);
  }

  if (result.discovered) {
    JRSND_COUNT("dndp.discovered");
  } else {
    JRSND_COUNT("dndp.failed");
  }
  JRSND_COUNT_N("dndp.hellos_delivered", result.hellos_delivered);
  JRSND_COUNT_N("dndp.subsessions.completed", result.subsessions_completed);
  JRSND_COUNT_N("dndp.subsessions.failed", attempted - result.subsessions_completed);
  if (result.mac_failure) JRSND_COUNT("dndp.mac_failures");
  if (obs::tracing_enabled()) {
    auto event =
        obs::TraceEvent("dndp.pair",
                        result.discovered ? obs::Severity::Info : obs::Severity::Warn)
            .with("a", std::uint64_t{raw(a.id())})
            .with("b", std::uint64_t{raw(b.id())})
            .with("shared", std::uint64_t{result.shared_codes})
            .with("hellos", std::uint64_t{result.hellos_delivered})
            .with("subsessions", std::uint64_t{result.subsessions_completed})
            .with("discovered", result.discovered)
            .with("mac_failure", result.mac_failure);
    // Only present when the retry discipline actually fired, so traces from
    // the default one-shot configuration are byte-identical to before.
    if (result.retransmissions > 0 || result.timeouts > 0) {
      event.with("retx", std::uint64_t{result.retransmissions})
          .with("timeouts", std::uint64_t{result.timeouts});
    }
    obs::event_log().emit(std::move(event));
  }
  return result;
}

}  // namespace jrsnd::core
