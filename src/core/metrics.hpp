// Measurement aggregation and paper-style table printing.
//
// Every figure bench collects one Stat per (sweep point, metric), averaged
// over the configured number of seeded runs (paper: 100 runs per point),
// and prints an aligned table whose rows mirror the paper's plotted series.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

namespace jrsnd::core {

/// Streaming mean/variance accumulator (Welford).
class Stat {
 public:
  void add(double sample) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  /// NaN when no samples have been added — 0.0 would masquerade as a real
  /// observation in latency tables.
  [[nodiscard]] double min() const noexcept {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  [[nodiscard]] double max() const noexcept {
    return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }
  /// Half-width of the 95% normal-approximation confidence interval.
  [[nodiscard]] double ci95() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-column table writer for bench output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int column_width = 12);

  void add_row(const std::vector<std::string>& cells);
  void add_row(const std::vector<double>& cells, int precision = 4);

  /// Renders headers + rows to `os`.
  void print(std::ostream& os) const;

  /// Renders as CSV (header line + comma-separated rows). Cells containing
  /// commas or quotes are quoted per RFC 4180.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int width_;
};

/// Formats a double with fixed precision (bench cells).
[[nodiscard]] std::string fmt(double value, int precision = 4);

}  // namespace jrsnd::core
