#include "crypto/prf.hpp"

#include <cassert>

#include "crypto/hmac.hpp"

namespace jrsnd::crypto {

std::vector<std::uint8_t> expand(const SymmetricKey& key, const std::string& info,
                                 std::size_t output_len) {
  const HmacKey prepared(key);
  return expand(prepared,
                std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(info.data()), info.size()),
                output_len);
}

std::vector<std::uint8_t> expand(const HmacKey& key, std::span<const std::uint8_t> info,
                                 std::size_t output_len) {
  assert(output_len <= 255 * kSha256DigestSize);
  std::vector<std::uint8_t> out;
  out.reserve(output_len);
  std::uint8_t counter = 1;
  while (out.size() < output_len) {
    // Stream info || counter into a copy of the cached inner midstate: no
    // concatenation buffer and no per-block key schedule.
    Sha256 ctx = key.inner_context();
    ctx.update(info);
    const std::uint8_t counter_byte = counter++;
    ctx.update(std::span<const std::uint8_t>(&counter_byte, 1));
    const Sha256Digest block = key.finish(ctx);
    const std::size_t take = std::min(block.size(), output_len - out.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

BitVector derive_bits(const SymmetricKey& key, const std::string& info, std::size_t bit_count) {
  const std::vector<std::uint8_t> bytes = expand(key, info, (bit_count + 7) / 8);
  BitVector all = BitVector::from_bytes(bytes);
  return all.slice(0, bit_count);
}

SymmetricKey derive_key(const SymmetricKey& key, const std::string& label) noexcept {
  return hmac_sha256(key, label);
}

}  // namespace jrsnd::crypto
