#include "crypto/prf.hpp"

#include <cassert>

#include "crypto/hmac.hpp"

namespace jrsnd::crypto {

std::vector<std::uint8_t> expand(const SymmetricKey& key, const std::string& info,
                                 std::size_t output_len) {
  assert(output_len <= 255 * kSha256DigestSize);
  std::vector<std::uint8_t> out;
  out.reserve(output_len);
  std::uint8_t counter = 1;
  while (out.size() < output_len) {
    std::vector<std::uint8_t> block_input(info.begin(), info.end());
    block_input.push_back(counter++);
    const Sha256Digest block = hmac_sha256(key, block_input);
    const std::size_t take = std::min(block.size(), output_len - out.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

BitVector derive_bits(const SymmetricKey& key, const std::string& info, std::size_t bit_count) {
  const std::vector<std::uint8_t> bytes = expand(key, info, (bit_count + 7) / 8);
  BitVector all = BitVector::from_bytes(bytes);
  return all.slice(0, bit_count);
}

SymmetricKey derive_key(const SymmetricKey& key, const std::string& label) noexcept {
  return hmac_sha256(key, label);
}

}  // namespace jrsnd::crypto
