#include "crypto/verify_queue.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "obs/metrics_registry.hpp"

namespace jrsnd::crypto {

namespace {

/// MAC input layout shared with AuthMessage::mac_input: the sender ID as a
/// 32-bit big-endian field, then the l_n nonce bits, MSB-first, zero-padded
/// to a byte boundary. 32 + 64 nonce bits is the ceiling -> 12 bytes.
constexpr std::size_t kMaxMacInputBytes = 12;

std::size_t build_mac_input(const VerifyWire& wire, const BitVector& frame,
                            std::uint32_t sender,
                            std::array<std::uint8_t, kMaxMacInputBytes>& out) noexcept {
  out.fill(0);
  out[0] = static_cast<std::uint8_t>(sender >> 24);
  out[1] = static_cast<std::uint8_t>(sender >> 16);
  out[2] = static_cast<std::uint8_t>(sender >> 8);
  out[3] = static_cast<std::uint8_t>(sender);
  // The nonce starts at bit 32 of the input — byte-aligned, so it packs as a
  // left-justified big-endian field.
  const std::uint64_t nonce = frame.read_uint(wire.l_t + wire.l_id, wire.l_n);
  const std::size_t nonce_bytes = (wire.l_n + 7) / 8;
  const std::uint64_t shifted = nonce << (nonce_bytes * 8 - wire.l_n);
  for (std::size_t i = 0; i < nonce_bytes; ++i) {
    out[4 + i] = static_cast<std::uint8_t>(shifted >> (8 * (nonce_bytes - 1 - i)));
  }
  return 4 + nonce_bytes;
}

}  // namespace

const char* verify_stage_name(VerifyStage stage) noexcept {
  switch (stage) {
    case VerifyStage::Accept: return "accept";
    case VerifyStage::RejectLength: return "reject_length";
    case VerifyStage::RejectFormat: return "reject_format";
    case VerifyStage::RejectCode: return "reject_code";
    case VerifyStage::RejectMac: return "reject_mac";
  }
  return "?";
}

VerifyQueue::VerifyQueue(const VerifyWire& wire) : wire_(wire) {
  assert(wire_.l_t >= 1 && wire_.l_t <= 32);
  assert(wire_.l_id >= 1 && wire_.l_id <= 32);
  assert(wire_.l_n >= 1 && wire_.l_n <= 64);
  assert(wire_.l_mac >= 1 && wire_.l_mac <= 256);
}

void VerifyQueue::reserve(std::size_t frames) {
  pending_.reserve(frames);
  mac_scratch_.reserve(frames);
}

void VerifyQueue::push(const BitVector& frame, std::uint32_t frame_code,
                       std::uint32_t expected_code) {
  pending_.push_back(Pending{&frame, frame_code, expected_code});
}

bool VerifyQueue::cheap_stages(const Pending& p, VerifyResult& out,
                               DrainCounts& counts) const noexcept {
  const BitVector& frame = *p.frame;
  if (frame.size() != wire_.frame_bits()) {
    out.stage = VerifyStage::RejectLength;
    ++counts.length;
    return false;
  }
  if (frame.read_uint(0, wire_.l_t) != wire_.auth_type) {
    out.stage = VerifyStage::RejectFormat;
    ++counts.format;
    return false;
  }
  out.sender = static_cast<std::uint32_t>(frame.read_uint(wire_.l_t, wire_.l_id));
  if (p.frame_code != p.expected_code) {
    out.stage = VerifyStage::RejectCode;
    ++counts.code;
    return false;
  }
  return true;  // survived the cheap stages; MAC decides
}

bool VerifyQueue::mac_matches(const BitVector& frame, std::uint32_t sender,
                              const HmacKey& schedule) const noexcept {
  std::array<std::uint8_t, kMaxMacInputBytes> input;
  const std::size_t input_len = build_mac_input(wire_, frame, sender, input);
  const Sha256Digest expected =
      schedule.mac(std::span<const std::uint8_t>(input.data(), input_len));
  return wire_mac_equals(frame, expected);
}

bool VerifyQueue::wire_mac_equals(const BitVector& frame,
                                  const Sha256Digest& expected) const noexcept {
  // Compare the first l_mac bits of the expected digest against the l_mac
  // wire bits, in place: full bytes, then a masked tail. Constant-time
  // OR-accumulate, mirroring digest_equal.
  const std::size_t mac_off = std::size_t{wire_.l_t} + wire_.l_id + wire_.l_n;
  const std::size_t full_bytes = wire_.l_mac / 8;
  const std::size_t tail_bits = wire_.l_mac % 8;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < full_bytes; ++i) {
    const auto wire_byte =
        static_cast<std::uint8_t>(frame.read_uint(mac_off + 8 * i, 8));
    diff = static_cast<std::uint8_t>(diff | (wire_byte ^ expected[i]));
  }
  if (tail_bits != 0) {
    const auto wire_tail = static_cast<std::uint8_t>(
        frame.read_uint(mac_off + 8 * full_bytes, tail_bits) << (8 - tail_bits));
    const auto mask = static_cast<std::uint8_t>(0xFFu << (8 - tail_bits));
    diff = static_cast<std::uint8_t>(diff | (wire_tail ^ (expected[full_bytes] & mask)));
  }
  return diff == 0;
}

const VerifyQueue::CachedKey& VerifyQueue::resolve_key(std::uint64_t cache_key,
                                                       std::uint32_t sender,
                                                       const KeySource& source,
                                                       DrainCounts& counts) {
  const auto it = keys_.find(cache_key);
  if (it != keys_.end()) {
    ++counts.cache_hits;
    return it->second;
  }
  ++counts.cache_misses;
  const SymmetricKey raw = source.key_for(sender);
  const HmacKey schedule(std::span<const std::uint8_t>(raw.data(), raw.size()));
  if (keys_.size() < kMaxCachedPeers) {
    return keys_.emplace(cache_key, CachedKey{raw, schedule}).first->second;
  }
  overflow_ = CachedKey{raw, schedule};
  return overflow_;
}

std::size_t VerifyQueue::drain(const KeySource& source, std::vector<VerifyResult>& out) {
  out.clear();
  mac_scratch_.clear();
  DrainCounts counts;

  // Pass 1: the allocation-free cheap stages; survivors queue for the MAC
  // stage keyed by the pairwise key they will verify under.
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    VerifyResult result;
    if (cheap_stages(pending_[i], result, counts)) {
      result.stage = VerifyStage::RejectMac;  // provisional until the MAC passes
      mac_scratch_.push_back(MacWork{source.cache_key(result.sender),
                                     static_cast<std::uint32_t>(i)});
    }
    out.push_back(result);
  }

  // Pass 2: group survivors by peer so each key schedule is resolved once
  // per batch. The sort is in-place over POD scratch — no allocation; the
  // index tiebreak keeps the grouping deterministic.
  std::sort(mac_scratch_.begin(), mac_scratch_.end(),
            [](const MacWork& a, const MacWork& b) {
              return a.cache_key != b.cache_key ? a.cache_key < b.cache_key
                                                : a.index < b.index;
            });

  // MAC-stage lanes: survivors accumulate (across group boundaries) until
  // eight are pending, then one HmacKey::mac_x8 call settles all eight.
  // Leftovers fall back to the scalar midstate path — same digests.
  const HmacKey* lane_keys[kSha256Lanes];
  const CachedKey* lane_entries[kSha256Lanes];
  std::uint32_t lane_frame[kSha256Lanes];
  std::array<std::uint8_t, kMaxMacInputBytes> lane_msgs[kSha256Lanes];
  std::size_t lane_lens[kSha256Lanes];
  std::size_t lanes = 0;

  const auto settle = [&](std::size_t lane, const Sha256Digest& digest) {
    VerifyResult& result = out[lane_frame[lane]];
    if (wire_mac_equals(*pending_[lane_frame[lane]].frame, digest)) {
      result.stage = VerifyStage::Accept;
      result.key = lane_entries[lane]->raw;
      ++counts.accepted;
    } else {
      ++counts.mac;
    }
  };
  const auto flush_lanes = [&]() {
    if (lanes == kSha256Lanes) {
      const std::uint8_t* msg_ptrs[kSha256Lanes];
      for (std::size_t l = 0; l < kSha256Lanes; ++l) msg_ptrs[l] = lane_msgs[l].data();
      Sha256Digest digests[kSha256Lanes];
      HmacKey::mac_x8(lane_keys, msg_ptrs, lane_lens, digests);
      for (std::size_t l = 0; l < kSha256Lanes; ++l) settle(l, digests[l]);
    } else {
      for (std::size_t l = 0; l < lanes; ++l) {
        const Sha256Digest digest = lane_keys[l]->mac(
            std::span<const std::uint8_t>(lane_msgs[l].data(), lane_lens[l]));
        settle(l, digest);
      }
    }
    lanes = 0;
  };

  std::size_t g = 0;
  while (g < mac_scratch_.size()) {
    const std::uint64_t group_key = mac_scratch_[g].cache_key;
    const std::uint32_t group_sender = out[mac_scratch_[g].index].sender;
    const CachedKey& entry = resolve_key(group_key, group_sender, source, counts);
    for (; g < mac_scratch_.size() && mac_scratch_[g].cache_key == group_key; ++g) {
      const std::uint32_t idx = mac_scratch_[g].index;
      lane_entries[lanes] = &entry;
      lane_keys[lanes] = &entry.schedule;
      lane_frame[lanes] = idx;
      lane_lens[lanes] =
          build_mac_input(wire_, *pending_[idx].frame, out[idx].sender, lane_msgs[lanes]);
      if (++lanes == kSha256Lanes) flush_lanes();
    }
    // A resolve past the cache cap parks the schedule in the single
    // overflow_ slot, which the *next* past-cap miss reuses — settle any
    // lane still pointing at it before that can happen. Map-resident
    // entries are stable (node-based unordered_map) and can span groups.
    if (&entry == &overflow_) flush_lanes();
  }
  flush_lanes();

  JRSND_COUNT_N("crypto.verify.frames", pending_.size());
  JRSND_COUNT("crypto.verify.batches");
  JRSND_COUNT_N("crypto.reject.length", counts.length);
  JRSND_COUNT_N("crypto.reject.format", counts.format);
  JRSND_COUNT_N("crypto.reject.code", counts.code);
  JRSND_COUNT_N("crypto.reject.mac", counts.mac);
  JRSND_COUNT_N("crypto.verify.accepted", counts.accepted);
  JRSND_COUNT_N("crypto.verify.peer_cache.hits", counts.cache_hits);
  JRSND_COUNT_N("crypto.verify.peer_cache.misses", counts.cache_misses);

  pending_.clear();
  return counts.accepted;
}

VerifyResult VerifyQueue::verify_now(const BitVector& frame, std::uint32_t frame_code,
                                     std::uint32_t expected_code, const KeySource& source) {
  DrainCounts counts;
  VerifyResult result;
  const Pending p{&frame, frame_code, expected_code};
  if (cheap_stages(p, result, counts)) {
    const CachedKey& entry =
        resolve_key(source.cache_key(result.sender), result.sender, source, counts);
    if (mac_matches(frame, result.sender, entry.schedule)) {
      result.stage = VerifyStage::Accept;
      result.key = entry.raw;
      ++counts.accepted;
    } else {
      result.stage = VerifyStage::RejectMac;
      ++counts.mac;
    }
  }
  JRSND_COUNT("crypto.verify.frames");
  JRSND_COUNT_N("crypto.reject.length", counts.length);
  JRSND_COUNT_N("crypto.reject.format", counts.format);
  JRSND_COUNT_N("crypto.reject.code", counts.code);
  JRSND_COUNT_N("crypto.reject.mac", counts.mac);
  JRSND_COUNT_N("crypto.verify.accepted", counts.accepted);
  JRSND_COUNT_N("crypto.verify.peer_cache.hits", counts.cache_hits);
  JRSND_COUNT_N("crypto.verify.peer_cache.misses", counts.cache_misses);
  return result;
}

VerifyResult VerifyQueue::verify_one_shot(const VerifyWire& wire, const BitVector& frame,
                                          std::uint32_t frame_code,
                                          std::uint32_t expected_code,
                                          const KeySource& source) {
  VerifyResult result;
  JRSND_COUNT("crypto.verify.frames");

  // The historical decode: a sequential bounds-checked read fails exactly
  // when the frame is the wrong size or the type tag is not AUTH.
  if (frame.size() != wire.frame_bits()) {
    result.stage = VerifyStage::RejectLength;
    JRSND_COUNT("crypto.reject.length");
    return result;
  }
  if (frame.read_uint(0, wire.l_t) != wire.auth_type) {
    result.stage = VerifyStage::RejectFormat;
    JRSND_COUNT("crypto.reject.format");
    return result;
  }
  result.sender = static_cast<std::uint32_t>(frame.read_uint(wire.l_t, wire.l_id));
  // Allocating field extraction, as AuthMessage::decode performs it.
  const std::size_t nonce_off = std::size_t{wire.l_t} + wire.l_id;
  const BitVector nonce = frame.slice(nonce_off, wire.l_n);
  const BitVector wire_mac = frame.slice(nonce_off + wire.l_n, wire.l_mac);

  if (frame_code != expected_code) {
    result.stage = VerifyStage::RejectCode;
    JRSND_COUNT("crypto.reject.code");
    return result;
  }

  // Fresh pairwise key + raw hmac_sha256 per frame — the per-frame cost the
  // batched path amortizes away.
  const SymmetricKey key = source.key_for(result.sender);
  BitVector mac_input;
  mac_input.append_uint(result.sender, 32);
  mac_input.append(nonce);
  const std::vector<std::uint8_t> input_bytes = mac_input.to_bytes();
  const Sha256Digest expected = hmac_sha256(
      std::span<const std::uint8_t>(key.data(), key.size()), input_bytes);
  const BitVector expected_bits =
      BitVector::from_bytes(std::span<const std::uint8_t>(expected.data(), expected.size()))
          .slice(0, wire.l_mac);
  if (expected_bits == wire_mac) {
    result.stage = VerifyStage::Accept;
    result.key = key;
    JRSND_COUNT("crypto.verify.accepted");
  } else {
    result.stage = VerifyStage::RejectMac;
    JRSND_COUNT("crypto.reject.mac");
  }
  return result;
}

void VerifyQueue::clear_key_cache() { keys_.clear(); }

}  // namespace jrsnd::crypto
