// Authenticated symmetric encryption for post-discovery traffic.
//
// The whole point of JR-SND is to put two strangers in possession of a
// shared secret usable for "subsequent anti-jamming communications"
// (paper §I). This module supplies the payload protection for that
// traffic: encrypt-then-MAC with keys derived from the pairwise key —
//
//   enc_key = PRF(K_AB, "enc"),   mac_key = PRF(K_AB, "mac"),
//   keystream = PRF-CTR(enc_key, counter),
//   tag = HMAC(mac_key, counter || ciphertext)[0..15].
//
// The counter doubles as a nonce and as replay protection (receivers track
// the highest counter seen). Built entirely on the repository's SHA-256.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/prf.hpp"

namespace jrsnd::crypto {

inline constexpr std::size_t kSealTagBytes = 16;

/// A sealed (encrypted + authenticated) message.
struct SealedMessage {
  std::uint64_t counter = 0;
  std::vector<std::uint8_t> ciphertext;
  std::array<std::uint8_t, kSealTagBytes> tag{};

  /// Wire form: 8-byte big-endian counter || ciphertext || tag.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;
  [[nodiscard]] static std::optional<SealedMessage> from_bytes(
      std::span<const std::uint8_t> bytes);
};

/// Duplex cipher state bound to one pairwise key and one direction.
/// (Each endpoint uses one Sealer for its sending direction and one
/// Unsealer per peer direction; direction labels keep keystreams apart.)
class Sealer {
 public:
  /// `direction` domain-separates A->B from B->A (use the sender's id).
  Sealer(const SymmetricKey& pair_key, const std::string& direction);

  [[nodiscard]] SealedMessage seal(std::span<const std::uint8_t> plaintext);

  [[nodiscard]] std::uint64_t next_counter() const noexcept { return counter_; }

 private:
  // Prepared midstates of the derived keys: the per-seal keystream blocks
  // and tag reuse them instead of re-absorbing the key pads every call.
  HmacKey enc_key_;
  HmacKey mac_key_;
  std::uint64_t counter_ = 1;
};

class Unsealer {
 public:
  Unsealer(const SymmetricKey& pair_key, const std::string& direction);

  /// Verifies and decrypts. Rejects bad tags and non-increasing counters
  /// (replays); on success advances the replay floor.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> open(const SealedMessage& message);

  [[nodiscard]] std::uint64_t replay_floor() const noexcept { return highest_seen_; }

 private:
  HmacKey enc_key_;
  HmacKey mac_key_;
  std::uint64_t highest_seen_ = 0;
};

}  // namespace jrsnd::crypto
