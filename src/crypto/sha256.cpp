#include "crypto/sha256.hpp"

#include <bit>
#include <cstring>

namespace jrsnd::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInitialState = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

Sha256::Sha256() noexcept { reset(); }

void Sha256::reset() noexcept {
  state_ = kInitialState;
  buffer_len_ = 0;
  total_bytes_ = 0;
}

void Sha256::update(std::span<const std::uint8_t> data) noexcept {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
}

void Sha256::update(const std::string& text) noexcept {
  update(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(text.data()),
                                       text.size()));
}

Sha256Digest Sha256::finalize() noexcept {
  const std::uint64_t bit_length = total_bytes_ * 8;
  // Padding: 0x80, zeros, then 64-bit big-endian length.
  const std::uint8_t pad_byte = 0x80;
  update(std::span<const std::uint8_t>(&pad_byte, 1));
  static constexpr std::uint8_t kZeros[64] = {};
  while (buffer_len_ != 56) {
    const std::size_t need = buffer_len_ < 56 ? 56 - buffer_len_ : 64 - buffer_len_ + 56;
    update(std::span<const std::uint8_t>(kZeros, std::min<std::size_t>(need, 64)));
  }
  std::uint8_t length_be[8];
  for (int i = 0; i < 8; ++i) length_be[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  update(std::span<const std::uint8_t>(length_be, 8));

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) store_be32(digest.data() + 4 * i, state_[static_cast<std::size_t>(i)]);
  return digest;
}

void sha256_compress(std::array<std::uint32_t, 8>& state, const std::uint8_t* block) noexcept {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];

  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kRoundConstants[static_cast<std::size_t>(i)] + w[i];
    const std::uint32_t s0 = std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

void Sha256::process_block(const std::uint8_t* block) noexcept {
  sha256_compress(state_, block);
}

Sha256Digest Sha256::hash(std::span<const std::uint8_t> data) noexcept {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finalize();
}

Sha256Digest Sha256::hash(const std::string& text) noexcept {
  Sha256 ctx;
  ctx.update(text);
  return ctx.finalize();
}

}  // namespace jrsnd::crypto
