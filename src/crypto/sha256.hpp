// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the sole hash primitive in the repository: HMAC, the PRF/KDF, the
// pairing-oracle IBC, and the session-spread-code derivation h_K(.) of the
// paper are all built on it. Verified against the FIPS test vectors in
// tests/crypto_sha256_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace jrsnd::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// One FIPS 180-4 compression: folds a single 64-byte block into `state`.
/// The low-level primitive Sha256 runs per block — exposed so the multi-
/// buffer lanes (crypto/sha256_multi.hpp) share the exact reference
/// compression on their scalar backend.
void sha256_compress(std::array<std::uint32_t, 8>& state, const std::uint8_t* block) noexcept;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() noexcept;

  /// Absorbs more message bytes.
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(const std::string& text) noexcept;

  /// Finalizes and returns the digest. The context must not be updated
  /// afterwards (reset() first to reuse).
  [[nodiscard]] Sha256Digest finalize() noexcept;

  /// Returns the context to its initial state.
  void reset() noexcept;

  /// The raw chaining value. A resumable midstate only when the absorbed
  /// length is a multiple of 64 bytes (internal buffer empty) — the hook the
  /// HMAC multi-buffer path uses to seed its lanes from cached midstates.
  [[nodiscard]] const std::array<std::uint32_t, 8>& chaining_state() const noexcept {
    return state_;
  }

  /// One-shot convenience.
  [[nodiscard]] static Sha256Digest hash(std::span<const std::uint8_t> data) noexcept;
  [[nodiscard]] static Sha256Digest hash(const std::string& text) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace jrsnd::crypto
