// HMAC-SHA-256 (RFC 2104 / FIPS 198-1), built on the from-scratch SHA-256.
//
// Used directly for the MAC f_K(.) in the D-NDP authentication handshake and
// as the PRF underlying key derivation and the pairing oracle.
//
// HmacKey caches the HMAC *midstates*: the SHA-256 compression states after
// absorbing the ipad and opad blocks, which depend only on the key. A plain
// hmac_sha256 call runs four compressions for a short message (ipad block,
// message block, opad block, inner-digest block); with cached midstates the
// same MAC is two. Every repeated-key caller — Sealer/Unsealer tags, the
// PRF's per-block HMACs — holds an HmacKey instead of re-deriving the key
// schedule per call.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "crypto/sha256_multi.hpp"

namespace jrsnd::crypto {

/// Longest message the single-block multi-buffer MAC path accepts: message,
/// the 0x80 pad byte, and the 8-byte length must fit one 64-byte block.
inline constexpr std::size_t kMaxSingleBlockMessage = 55;

/// Computes HMAC-SHA-256(key, message).
[[nodiscard]] Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                                       std::span<const std::uint8_t> message) noexcept;

/// Convenience overload for string messages.
[[nodiscard]] Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                                       const std::string& message) noexcept;

/// A key prepared for repeated HMAC-SHA-256 use: the ipad/opad compression
/// states are computed once at construction and copied per MAC. Results are
/// byte-identical to hmac_sha256 for every key and message.
class HmacKey {
 public:
  /// Midstates of the empty key (valid, rarely useful).
  HmacKey() noexcept : HmacKey(std::span<const std::uint8_t>{}) {}

  explicit HmacKey(std::span<const std::uint8_t> key) noexcept;

  /// HMAC-SHA-256(key, message) from the cached midstates.
  [[nodiscard]] Sha256Digest mac(std::span<const std::uint8_t> message) const noexcept;
  [[nodiscard]] Sha256Digest mac(const std::string& message) const noexcept;

  /// Streaming form for multi-part messages: start with inner_context(),
  /// update() it with each part, then finish() — no concatenation buffer.
  [[nodiscard]] Sha256 inner_context() const noexcept { return inner_; }
  [[nodiscard]] Sha256Digest finish(Sha256& inner_ctx) const noexcept;

  /// Eight MACs in one multi-buffer SHA-256 pass: out[l] = keys[l]->mac(
  /// {msgs[l], lens[l]}) for every lane (keys may repeat across lanes).
  /// Requires lens[l] <= kMaxSingleBlockMessage so each inner hash is the
  /// cached midstate plus exactly one compression; runs two
  /// sha256_compress_x8 calls total and is byte-identical to mac() per lane
  /// on every backend. This is the flood-batch MAC stage of
  /// crypto::VerifyQueue.
  static void mac_x8(const HmacKey* const keys[kSha256Lanes],
                     const std::uint8_t* const msgs[kSha256Lanes],
                     const std::size_t lens[kSha256Lanes],
                     Sha256Digest out[kSha256Lanes]) noexcept;

 private:
  Sha256 inner_;  ///< state after absorbing key ^ ipad
  Sha256 outer_;  ///< state after absorbing key ^ opad
};

/// Constant-time digest comparison (avoids timing side channels in the
/// verification paths even though the simulation itself is not attackable).
[[nodiscard]] bool digest_equal(const Sha256Digest& a, const Sha256Digest& b) noexcept;

}  // namespace jrsnd::crypto
