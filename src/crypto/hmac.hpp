// HMAC-SHA-256 (RFC 2104 / FIPS 198-1), built on the from-scratch SHA-256.
//
// Used directly for the MAC f_K(.) in the D-NDP authentication handshake and
// as the PRF underlying key derivation and the pairing oracle.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"

namespace jrsnd::crypto {

/// Computes HMAC-SHA-256(key, message).
[[nodiscard]] Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                                       std::span<const std::uint8_t> message) noexcept;

/// Convenience overload for string messages.
[[nodiscard]] Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                                       const std::string& message) noexcept;

/// Constant-time digest comparison (avoids timing side channels in the
/// verification paths even though the simulation itself is not attackable).
[[nodiscard]] bool digest_equal(const Sha256Digest& a, const Sha256Digest& b) noexcept;

}  // namespace jrsnd::crypto
