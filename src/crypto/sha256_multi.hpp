// 8-lane multi-buffer SHA-256 compression (handshake-flood hardening).
//
// SHA-256's 64 rounds form one long dependency chain, so a single message
// cannot be vectorized — but eight *independent* single-block compressions
// can: hold each state word across eight lanes of a 256-bit vector and every
// round's adds/rotates/boolean functions cover all eight messages at once.
// This is exactly the shape of the batched MAC stage in crypto::VerifyQueue:
// under a handshake flood the receiver has many pending AUTH frames, each
// needing an independent short-message HMAC, and batching is what makes the
// lanes available in the first place (the one-at-a-time path never has more
// than one compression in flight).
//
// Backends follow the batched sync correlator's dispatch idiom
// (dsss/sync_kernel.hpp): resolved once per process from the CPU probe, with
// the same JRSND_SIMD environment override ("scalar" forces the reference
// path) and a bench/test setter. Every backend computes the identical FIPS
// 180-4 function — the scalar reference *is* crypto::sha256_compress per
// lane — so digests are bit-identical however the dispatch lands (pinned by
// tests/crypto_sha256_test.cpp and the dos_throughput identity gate).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "crypto/sha256.hpp"

namespace jrsnd::crypto {

/// Lanes per multi-buffer compression call (AVX2: eight 32-bit state words
/// per 256-bit register).
inline constexpr std::size_t kSha256Lanes = 8;

/// Backend for the multi-buffer compression. Values are published through
/// the `crypto.hash.backend` gauge (mirroring `dsss.simd.backend`).
enum class HashBackend : std::uint8_t { kScalar = 0, kAvx2 = 1 };

[[nodiscard]] const char* hash_backend_name(HashBackend backend) noexcept;

/// Whether this process can run `backend` (compiled in AND supported by the
/// CPU/OS). kScalar is always available.
[[nodiscard]] bool hash_backend_supported(HashBackend backend) noexcept;

/// The backend sha256_compress_x8 dispatches to, resolved once: JRSND_SIMD
/// ("scalar" forces the reference; unknown values are the sync kernel's to
/// warn about) when set, otherwise the best the hardware admits.
[[nodiscard]] HashBackend hash_backend();

/// Forces the dispatch backend (tests, benches). Unsupported requests clamp
/// to kScalar. Returns the backend actually installed.
HashBackend set_hash_backend(HashBackend backend);

/// Eight independent single-block compressions:
/// states[l] <- Compress(states[l], blocks[l]) for every lane l. Bit-
/// identical to crypto::sha256_compress per lane on every backend.
void sha256_compress_x8(std::array<std::uint32_t, 8> states[kSha256Lanes],
                        const std::uint8_t blocks[kSha256Lanes][64]) noexcept;

}  // namespace jrsnd::crypto
