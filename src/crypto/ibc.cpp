#include "crypto/ibc.hpp"

#include <algorithm>

#include "crypto/hmac.hpp"

namespace jrsnd::crypto {

namespace {

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

}  // namespace

SymmetricKey PairingOracle::pair_key(NodeId a, NodeId b) const noexcept {
  // The bilinear map is symmetric, so canonicalize the pair ordering.
  const std::uint32_t lo = std::min(raw(a), raw(b));
  const std::uint32_t hi = std::max(raw(a), raw(b));
  std::vector<std::uint8_t> input = {'p', 'a', 'i', 'r'};
  append_u32(input, lo);
  append_u32(input, hi);
  return hmac_sha256(master_, input);
}

SymmetricKey PairingOracle::sign_key(NodeId id) const noexcept {
  std::vector<std::uint8_t> input = {'s', 'i', 'g'};
  append_u32(input, raw(id));
  return hmac_sha256(master_, input);
}

bool PairingOracle::verify(NodeId signer_id, std::span<const std::uint8_t> message,
                           const IbcSignature& sig) const noexcept {
  const Sha256Digest expected = hmac_sha256(sign_key(signer_id), message);
  return digest_equal(expected, sig.tag);
}

SymmetricKey IbcPrivateKey::shared_key(NodeId peer) const noexcept {
  return oracle_->pair_key(id_, peer);
}

IbcSignature IbcPrivateKey::sign(std::span<const std::uint8_t> message) const noexcept {
  return IbcSignature{hmac_sha256(oracle_->sign_key(id_), message)};
}

IbcAuthority::IbcAuthority(std::uint64_t master_seed) noexcept {
  // Stretch the seed into a 256-bit master secret.
  std::vector<std::uint8_t> seed_bytes(8);
  for (int i = 0; i < 8; ++i) seed_bytes[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(master_seed >> (56 - 8 * i));
  const SymmetricKey master = Sha256::hash(seed_bytes);
  oracle_ = std::shared_ptr<const PairingOracle>(new PairingOracle(master));
}

IbcPrivateKey IbcAuthority::issue(NodeId id) const { return IbcPrivateKey(id, oracle_); }

Sha256Digest compute_mac(const SymmetricKey& key, std::span<const std::uint8_t> message) noexcept {
  return hmac_sha256(key, message);
}

}  // namespace jrsnd::crypto
