#include "crypto/sha256_multi.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/cpu_features.hpp"
#include "obs/metrics_registry.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace jrsnd::crypto {

namespace {

#if defined(__x86_64__)

// The same round constants as sha256.cpp; duplicated here because the AVX2
// path broadcasts them and the scalar path goes through sha256_compress.
constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

__attribute__((target("avx2"), always_inline)) inline __m256i rotr32(__m256i x, int n) {
  return _mm256_or_si256(_mm256_srli_epi32(x, n), _mm256_slli_epi32(x, 32 - n));
}

/// Word i of every lane's block, big-endian, gathered into one vector
/// (element l = lane l). memcpy loads: the byte blocks carry no alignment.
__attribute__((target("avx2"), always_inline)) inline __m256i gather_be32(
    const std::uint8_t blocks[kSha256Lanes][64], int i, __m256i bswap) {
  alignas(32) std::uint32_t tmp[kSha256Lanes];
  for (std::size_t l = 0; l < kSha256Lanes; ++l) std::memcpy(&tmp[l], blocks[l] + 4 * i, 4);
  const __m256i raw = _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
  return _mm256_shuffle_epi8(raw, bswap);
}

__attribute__((target("avx2"))) void compress_x8_avx2(
    std::array<std::uint32_t, 8> states[kSha256Lanes],
    const std::uint8_t blocks[kSha256Lanes][64]) noexcept {
  // Per-128-bit-lane byte swap: turns each little-endian dword load into the
  // big-endian word FIPS 180-4 schedules.
  const __m256i bswap = _mm256_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3,
                                        12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
  __m256i w[64];
  for (int i = 0; i < 16; ++i) w[i] = gather_be32(blocks, i, bswap);
  for (int i = 16; i < 64; ++i) {
    const __m256i w15 = w[i - 15];
    const __m256i w2 = w[i - 2];
    const __m256i s0 = _mm256_xor_si256(_mm256_xor_si256(rotr32(w15, 7), rotr32(w15, 18)),
                                        _mm256_srli_epi32(w15, 3));
    const __m256i s1 = _mm256_xor_si256(_mm256_xor_si256(rotr32(w2, 17), rotr32(w2, 19)),
                                        _mm256_srli_epi32(w2, 10));
    w[i] = _mm256_add_epi32(_mm256_add_epi32(w[i - 16], s0), _mm256_add_epi32(w[i - 7], s1));
  }

  // State word j across all lanes in one vector.
  alignas(32) std::uint32_t column[8];
  __m256i v[8];
  for (int j = 0; j < 8; ++j) {
    for (std::size_t l = 0; l < kSha256Lanes; ++l) column[l] = states[l][static_cast<std::size_t>(j)];
    v[j] = _mm256_load_si256(reinterpret_cast<const __m256i*>(column));
  }
  __m256i a = v[0], b = v[1], c = v[2], d = v[3], e = v[4], f = v[5], g = v[6], h = v[7];

  for (int i = 0; i < 64; ++i) {
    const __m256i s1 =
        _mm256_xor_si256(_mm256_xor_si256(rotr32(e, 6), rotr32(e, 11)), rotr32(e, 25));
    const __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f), _mm256_andnot_si256(e, g));
    const __m256i temp1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(h, s1), _mm256_add_epi32(ch, w[i])),
        _mm256_set1_epi32(static_cast<int>(kK[i])));
    const __m256i s0 =
        _mm256_xor_si256(_mm256_xor_si256(rotr32(a, 2), rotr32(a, 13)), rotr32(a, 22));
    const __m256i maj = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_and_si256(a, b), _mm256_and_si256(a, c)),
        _mm256_and_si256(b, c));
    const __m256i temp2 = _mm256_add_epi32(s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, temp1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(temp1, temp2);
  }

  v[0] = _mm256_add_epi32(v[0], a);
  v[1] = _mm256_add_epi32(v[1], b);
  v[2] = _mm256_add_epi32(v[2], c);
  v[3] = _mm256_add_epi32(v[3], d);
  v[4] = _mm256_add_epi32(v[4], e);
  v[5] = _mm256_add_epi32(v[5], f);
  v[6] = _mm256_add_epi32(v[6], g);
  v[7] = _mm256_add_epi32(v[7], h);
  for (int j = 0; j < 8; ++j) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(column), v[j]);
    for (std::size_t l = 0; l < kSha256Lanes; ++l) states[l][static_cast<std::size_t>(j)] = column[l];
  }
}

#endif  // __x86_64__

void compress_x8_scalar(std::array<std::uint32_t, 8> states[kSha256Lanes],
                        const std::uint8_t blocks[kSha256Lanes][64]) noexcept {
  for (std::size_t l = 0; l < kSha256Lanes; ++l) sha256_compress(states[l], blocks[l]);
}

/// 0 = unresolved; otherwise 1 + HashBackend.
std::atomic<int> g_hash_active{0};

void publish_hash_gauge(HashBackend backend) {
  JRSND_GAUGE_SET("crypto.hash.backend", static_cast<double>(backend));
}

HashBackend resolve_hash_backend() {
  HashBackend chosen =
      hash_backend_supported(HashBackend::kAvx2) ? HashBackend::kAvx2 : HashBackend::kScalar;
  // Honor the sync kernel's override knob: "scalar" forces the reference
  // lanes everywhere; any other value keeps the probe's choice (the sync
  // kernel owns warning about unknown values — no double logging here).
  if (const char* env = std::getenv("JRSND_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) chosen = HashBackend::kScalar;
  }
  g_hash_active.store(1 + static_cast<int>(chosen), std::memory_order_relaxed);
  publish_hash_gauge(chosen);
  return chosen;
}

}  // namespace

const char* hash_backend_name(HashBackend backend) noexcept {
  switch (backend) {
    case HashBackend::kScalar: return "scalar";
    case HashBackend::kAvx2: return "avx2";
  }
  return "unknown";
}

bool hash_backend_supported(HashBackend backend) noexcept {
  switch (backend) {
    case HashBackend::kScalar:
      return true;
    case HashBackend::kAvx2:
#if defined(__x86_64__)
      return cpu_features().avx2;
#else
      return false;
#endif
  }
  return false;
}

HashBackend hash_backend() {
  const int v = g_hash_active.load(std::memory_order_relaxed);
  if (v != 0) return static_cast<HashBackend>(v - 1);
  return resolve_hash_backend();
}

HashBackend set_hash_backend(HashBackend backend) {
  const HashBackend installed =
      hash_backend_supported(backend) ? backend : HashBackend::kScalar;
  g_hash_active.store(1 + static_cast<int>(installed), std::memory_order_relaxed);
  publish_hash_gauge(installed);
  return installed;
}

void sha256_compress_x8(std::array<std::uint32_t, 8> states[kSha256Lanes],
                        const std::uint8_t blocks[kSha256Lanes][64]) noexcept {
  switch (hash_backend()) {
#if defined(__x86_64__)
    case HashBackend::kAvx2:
      compress_x8_avx2(states, blocks);
      return;
#endif
    default:
      compress_x8_scalar(states, blocks);
      return;
  }
}

}  // namespace jrsnd::crypto
