#include "crypto/session_code.hpp"

#include <stdexcept>

#include "common/hex.hpp"

namespace jrsnd::crypto {

BitVector derive_session_code(const SymmetricKey& pair_key, const BitVector& nonce_a,
                              const BitVector& nonce_b, std::size_t code_length_chips) {
  if (nonce_a.size() != nonce_b.size()) {
    throw std::invalid_argument("derive_session_code: nonce length mismatch");
  }
  const BitVector mixed = nonce_a.xor_with(nonce_b);
  // Domain-separated PRF expansion of the XORed nonces to N bits.
  const std::string info = "session-code:" + to_hex(mixed.to_bytes());
  return derive_bits(pair_key, info, code_length_chips);
}

}  // namespace jrsnd::crypto
