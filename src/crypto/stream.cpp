#include "crypto/stream.hpp"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "crypto/hmac.hpp"
#include "obs/prof/perf_counters.hpp"
#include "obs/span.hpp"

namespace jrsnd::crypto {

namespace {

void append_be64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::pair<HmacKey, HmacKey> derive_pair(const SymmetricKey& pair_key,
                                        const std::string& direction) {
  const SymmetricKey enc = derive_key(pair_key, "enc:" + direction);
  const SymmetricKey mac = derive_key(pair_key, "mac:" + direction);
  return {HmacKey(enc), HmacKey(mac)};
}

void store_be64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * (7 - i)));
}

std::vector<std::uint8_t> keystream(const HmacKey& enc_key, std::uint64_t counter,
                                    std::size_t length) {
  // expand() yields at most 255 blocks per info string; chain chunks for
  // arbitrarily long payloads. The info header is a fixed 21-byte layout
  // ("ctr:" || be64 counter || ':' || be64 chunk — byte-identical to the
  // historical string build) written in place per chunk.
  constexpr std::size_t kChunk = 255 * kSha256DigestSize;
  std::array<std::uint8_t, 21> info{'c', 't', 'r', ':'};
  info[12] = ':';
  store_be64(info.data() + 4, counter);
  std::vector<std::uint8_t> out;
  out.reserve(length);
  for (std::uint64_t chunk = 0; out.size() < length; ++chunk) {
    store_be64(info.data() + 13, chunk);
    const std::vector<std::uint8_t> part =
        expand(enc_key, info, std::min(kChunk, length - out.size()));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::array<std::uint8_t, kSealTagBytes> compute_tag(const HmacKey& mac_key,
                                                    std::uint64_t counter,
                                                    std::span<const std::uint8_t> ciphertext) {
  // Stream counter || ciphertext through the cached midstate — no
  // concatenation buffer, two compressions fewer than a raw hmac_sha256.
  std::array<std::uint8_t, 8> counter_be{};
  store_be64(counter_be.data(), counter);
  Sha256 ctx = mac_key.inner_context();
  ctx.update(counter_be);
  ctx.update(ciphertext);
  const Sha256Digest digest = mac_key.finish(ctx);
  std::array<std::uint8_t, kSealTagBytes> tag{};
  std::copy(digest.begin(), digest.begin() + kSealTagBytes, tag.begin());
  return tag;
}

}  // namespace

std::vector<std::uint8_t> SealedMessage::to_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(8 + ciphertext.size() + kSealTagBytes);
  append_be64(out, counter);
  out.insert(out.end(), ciphertext.begin(), ciphertext.end());
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

std::optional<SealedMessage> SealedMessage::from_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 8 + kSealTagBytes) return std::nullopt;
  SealedMessage msg;
  for (int i = 0; i < 8; ++i) msg.counter = (msg.counter << 8) | bytes[static_cast<std::size_t>(i)];
  const std::size_t body = bytes.size() - 8 - kSealTagBytes;
  msg.ciphertext.assign(bytes.begin() + 8, bytes.begin() + 8 + static_cast<std::ptrdiff_t>(body));
  std::copy(bytes.end() - kSealTagBytes, bytes.end(), msg.tag.begin());
  return msg;
}

Sealer::Sealer(const SymmetricKey& pair_key, const std::string& direction) {
  std::tie(enc_key_, mac_key_) = derive_pair(pair_key, direction);
}

SealedMessage Sealer::seal(std::span<const std::uint8_t> plaintext) {
  obs::Span span("crypto.seal");
  JRSND_PERF_REGION("crypto.seal");
  span.with_u64("bytes", plaintext.size());
  SealedMessage msg;
  msg.counter = counter_++;
  const std::vector<std::uint8_t> ks = keystream(enc_key_, msg.counter, plaintext.size());
  msg.ciphertext.resize(plaintext.size());
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    msg.ciphertext[i] = static_cast<std::uint8_t>(plaintext[i] ^ ks[i]);
  }
  msg.tag = compute_tag(mac_key_, msg.counter, msg.ciphertext);
  return msg;
}

Unsealer::Unsealer(const SymmetricKey& pair_key, const std::string& direction) {
  std::tie(enc_key_, mac_key_) = derive_pair(pair_key, direction);
}

std::optional<std::vector<std::uint8_t>> Unsealer::open(const SealedMessage& message) {
  obs::Span span("crypto.unseal");
  JRSND_PERF_REGION("crypto.unseal");
  // Authenticate first (constant-time compare), then replay-check, then
  // decrypt.
  const auto expected = compute_tag(mac_key_, message.counter, message.ciphertext);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kSealTagBytes; ++i) {
    diff |= static_cast<std::uint8_t>(expected[i] ^ message.tag[i]);
  }
  if (diff != 0) {
    span.set_ok(false);
    span.set_loss(obs::LossStage::Corrupt);
    return std::nullopt;
  }
  if (message.counter <= highest_seen_) {
    span.set_ok(false);
    span.set_loss(obs::LossStage::Corrupt);
    return std::nullopt;  // replay / reorder
  }
  highest_seen_ = message.counter;

  const std::vector<std::uint8_t> ks =
      keystream(enc_key_, message.counter, message.ciphertext.size());
  std::vector<std::uint8_t> plaintext(message.ciphertext.size());
  for (std::size_t i = 0; i < plaintext.size(); ++i) {
    plaintext[i] = static_cast<std::uint8_t>(message.ciphertext[i] ^ ks[i]);
  }
  return plaintext;
}

}  // namespace jrsnd::crypto
