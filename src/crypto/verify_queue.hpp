// Batched handshake-frame verification (handshake-flood hardening).
//
// A receiver under a verification-flooding DoS sees a stream of AUTH frames,
// most of them garbage. The one-at-a-time path pays the full cost for every
// frame: BitVector decode (several allocations), a fresh pairwise-key
// derivation (4 SHA-256 compressions through the pairing oracle), and a raw
// hmac_sha256 (4 more compressions). VerifyQueue restructures that work
// cheapest-check-first over a batch:
//
//   1. length  — frame size != l_t + l_id + l_n + l_mac      (integer compare)
//   2. format  — the l_t-bit type tag is not AUTH             (one read_uint)
//   3. code    — the frame's spread code != the expected one  (integer compare)
//   4. MAC     — recompute f_K(ID | n) and compare l_mac bits (2 compressions
//                via a cached HMAC midstate, amortized per peer)
//
// Stages 1-3 touch no crypto and allocate nothing; stage 4 reuses a per-peer
// HmacKey schedule cached across batches, assembles the MAC input in a fixed
// on-stack buffer, and compares against the wire bits in place (constant-time
// OR-accumulate). drain() additionally runs the MAC stage eight frames at a
// time through the multi-buffer SHA-256 lanes (crypto/sha256_multi.hpp) —
// independent-message parallelism only a batch can expose; the one-at-a-time
// path never has more than one compression in flight.
// The decision — and the per-stage crypto.reject.* counters —
// are bit-identical to verify_one_shot(), the historical decode-then-verify
// reference, which bench/dos_throughput proves in-binary before timing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bit_vector.hpp"
#include "crypto/hmac.hpp"
#include "crypto/prf.hpp"

namespace jrsnd::crypto {

/// The AUTH-frame geometry the queue verifies against (mirrors the core
/// layer's WireConfig without depending on it). Limits: l_mac <= 256 (the
/// digest width), l_n <= 64 and l_id <= 32 (single read_uint extraction).
struct VerifyWire {
  std::uint32_t l_t = 5;
  std::uint32_t l_id = 16;
  std::uint32_t l_n = 20;
  std::uint32_t l_mac = 160;
  std::uint32_t auth_type = 3;  ///< MessageType::Auth on the wire

  [[nodiscard]] std::size_t frame_bits() const noexcept {
    return std::size_t{l_t} + l_id + l_n + l_mac;
  }
};

/// Verdict stages, ordered by the cost of reaching them. Everything but
/// Accept names the (cheapest) check that killed the frame.
enum class VerifyStage : std::uint8_t {
  Accept,
  RejectLength,  ///< wrong frame size (includes truncation)
  RejectFormat,  ///< right size, wrong type tag
  RejectCode,    ///< well-formed but on a spread code we are not expecting
  RejectMac,     ///< survived the cheap stages; the MAC does not verify
};

[[nodiscard]] const char* verify_stage_name(VerifyStage stage) noexcept;

/// Per-frame verdict. `sender` is the decoded l_id-bit ID field (valid from
/// RejectCode onward — earlier stages never parse it). `key` is the pairwise
/// key the MAC verified under, populated only on Accept.
struct VerifyResult {
  VerifyStage stage = VerifyStage::RejectLength;
  std::uint32_t sender = 0;
  SymmetricKey key{};
};

/// Where pairwise keys come from. `cache_key` must identify the pairwise key
/// a claimed sender maps to (for the symmetric IBC keys: the unordered
/// {receiver, sender} pair); `key_for` derives it — called only on a
/// schedule-cache miss, so it may allocate.
class KeySource {
 public:
  virtual ~KeySource() = default;
  [[nodiscard]] virtual std::uint64_t cache_key(std::uint32_t sender) const noexcept = 0;
  [[nodiscard]] virtual SymmetricKey key_for(std::uint32_t sender) const = 0;
};

class VerifyQueue {
 public:
  explicit VerifyQueue(const VerifyWire& wire);

  [[nodiscard]] const VerifyWire& wire() const noexcept { return wire_; }

  /// Pre-sizes the pending list and scratch so a steady-state push/drain
  /// cycle of up to `frames` frames cannot allocate.
  void reserve(std::size_t frames);

  /// Enqueues a frame for the next drain(). The queue stores a pointer: the
  /// frame must stay alive and unmodified until drain() returns.
  void push(const BitVector& frame, std::uint32_t frame_code, std::uint32_t expected_code);

  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }

  /// Verifies every pending frame, appending one VerifyResult per frame into
  /// `out` (cleared first, same order as push). Returns the number accepted.
  /// MAC-stage survivors are grouped by peer so each peer's HMAC key schedule
  /// is resolved once per batch; allocation-free once reserve() capacity and
  /// the peer cache are warm.
  std::size_t drain(const KeySource& source, std::vector<VerifyResult>& out);

  /// Single-frame form of the same pipeline (shares the peer cache). This is
  /// what the D-NDP engine calls inline during a handshake.
  [[nodiscard]] VerifyResult verify_now(const BitVector& frame, std::uint32_t frame_code,
                                        std::uint32_t expected_code, const KeySource& source);

  /// The historical one-at-a-time path, kept as the in-binary equivalence
  /// reference: full BitVector decode (allocating slices), a fresh
  /// KeySource::key_for call, raw hmac_sha256, and a truncated-digest
  /// compare. Bumps the same per-frame decision counters as the batched
  /// path; accept/reject verdicts are bit-identical by construction.
  [[nodiscard]] static VerifyResult verify_one_shot(const VerifyWire& wire,
                                                    const BitVector& frame,
                                                    std::uint32_t frame_code,
                                                    std::uint32_t expected_code,
                                                    const KeySource& source);

  /// Drops every cached per-peer key schedule (tests; never needed in the
  /// steady state — the cache is capped).
  void clear_key_cache();

  [[nodiscard]] std::size_t cached_peers() const noexcept { return keys_.size(); }

  /// Peer-schedule cache cap: past this many distinct pairwise keys, misses
  /// fall back to an uncached schedule instead of growing the map.
  static constexpr std::size_t kMaxCachedPeers = 4096;

 private:
  struct Pending {
    const BitVector* frame;
    std::uint32_t frame_code;
    std::uint32_t expected_code;
  };
  struct CachedKey {
    SymmetricKey raw{};
    HmacKey schedule;
  };
  struct MacWork {
    std::uint64_t cache_key;
    std::uint32_t index;  ///< position in the drained batch / output vector
  };
  struct DrainCounts {
    std::uint64_t length = 0;
    std::uint64_t format = 0;
    std::uint64_t code = 0;
    std::uint64_t mac = 0;
    std::uint64_t accepted = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
  };

  /// Stages 1-3. Returns true when the frame must go to the MAC stage, in
  /// which case `out` carries the parsed sender.
  [[nodiscard]] bool cheap_stages(const Pending& p, VerifyResult& out,
                                  DrainCounts& counts) const noexcept;

  /// Stage 4 for one frame under an already-resolved schedule.
  [[nodiscard]] bool mac_matches(const BitVector& frame, std::uint32_t sender,
                                 const HmacKey& schedule) const noexcept;

  /// Compares the first l_mac bits of `expected` against the wire MAC field,
  /// in place (constant-time OR-accumulate).
  [[nodiscard]] bool wire_mac_equals(const BitVector& frame,
                                     const Sha256Digest& expected) const noexcept;

  /// Resolves (or creates / falls back) the cached key entry for one peer.
  const CachedKey& resolve_key(std::uint64_t cache_key, std::uint32_t sender,
                               const KeySource& source, DrainCounts& counts);

  VerifyWire wire_;
  std::vector<Pending> pending_;
  std::vector<MacWork> mac_scratch_;
  std::unordered_map<std::uint64_t, CachedKey> keys_;
  CachedKey overflow_;  ///< reused slot for misses past kMaxCachedPeers
};

}  // namespace jrsnd::crypto
