// PRF / KDF utilities on top of HMAC-SHA-256.
//
// expand() implements an HKDF-expand-style construction producing arbitrary
// length output; derive_bits() feeds BitVector consumers such as the
// session-spread-code derivation, where the paper needs an N-bit (N = 512)
// pseudorandom string from a 256-bit MAC key.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bit_vector.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace jrsnd::crypto {

/// A symmetric key as used throughout the protocols (always 32 bytes here).
using SymmetricKey = Sha256Digest;

/// HKDF-expand style: out(i) = HMAC(key, info || counter_i), concatenated and
/// truncated to `output_len` bytes. Precondition: output_len <= 255 * 32.
[[nodiscard]] std::vector<std::uint8_t> expand(const SymmetricKey& key, const std::string& info,
                                               std::size_t output_len);

/// expand() over a prepared key: the HMAC midstates are reused across the
/// output blocks (and across calls when the caller keeps the HmacKey), and
/// the per-block counter is streamed after `info` instead of concatenated
/// into a fresh buffer. Byte-identical output to the SymmetricKey overload.
[[nodiscard]] std::vector<std::uint8_t> expand(const HmacKey& key,
                                               std::span<const std::uint8_t> info,
                                               std::size_t output_len);

/// Derives `bit_count` pseudorandom bits keyed by `key` over `info`.
[[nodiscard]] BitVector derive_bits(const SymmetricKey& key, const std::string& info,
                                    std::size_t bit_count);

/// Derives a fresh 32-byte key: HMAC(key, label).
[[nodiscard]] SymmetricKey derive_key(const SymmetricKey& key, const std::string& label) noexcept;

}  // namespace jrsnd::crypto
