#include "crypto/hmac.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

#include "obs/metrics_registry.hpp"

namespace jrsnd::crypto {

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> message) noexcept {
  static constexpr std::size_t kBlockSize = 64;

  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Sha256Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Sha256Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

HmacKey::HmacKey(std::span<const std::uint8_t> key) noexcept {
  static constexpr std::size_t kBlockSize = 64;
  JRSND_COUNT("crypto.hmac.midstate.builds");

  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Sha256Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlockSize> pad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
  }
  inner_.update(pad);  // one compression; cached for every later mac()
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }
  outer_.update(pad);
}

Sha256Digest HmacKey::mac(std::span<const std::uint8_t> message) const noexcept {
  Sha256 inner_ctx = inner_;
  inner_ctx.update(message);
  return finish(inner_ctx);
}

Sha256Digest HmacKey::mac(const std::string& message) const noexcept {
  return mac(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(message.data()),
                                           message.size()));
}

Sha256Digest HmacKey::finish(Sha256& inner_ctx) const noexcept {
  JRSND_COUNT("crypto.hmac.midstate.hits");
  const Sha256Digest inner_digest = inner_ctx.finalize();
  Sha256 outer_ctx = outer_;
  outer_ctx.update(inner_digest);
  return outer_ctx.finalize();
}

void HmacKey::mac_x8(const HmacKey* const keys[kSha256Lanes],
                     const std::uint8_t* const msgs[kSha256Lanes],
                     const std::size_t lens[kSha256Lanes],
                     Sha256Digest out[kSha256Lanes]) noexcept {
  std::array<std::uint32_t, 8> states[kSha256Lanes];
  std::uint8_t blocks[kSha256Lanes][64];

  // Inner hash: midstate (key ^ ipad already absorbed, 64 bytes) plus one
  // padded message block of (64 + len) * 8 total bits.
  for (std::size_t l = 0; l < kSha256Lanes; ++l) {
    assert(lens[l] <= kMaxSingleBlockMessage);
    states[l] = keys[l]->inner_.chaining_state();
    std::memset(blocks[l], 0, sizeof(blocks[l]));
    std::memcpy(blocks[l], msgs[l], lens[l]);
    blocks[l][lens[l]] = 0x80;
    const std::uint64_t bits = (64 + lens[l]) * 8;
    for (int i = 0; i < 8; ++i) {
      blocks[l][56 + i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
    }
  }
  sha256_compress_x8(states, blocks);

  // Outer hash: midstate (key ^ opad) plus the 32-byte inner digest padded
  // to one block, total length (64 + 32) * 8 = 768 bits.
  for (std::size_t l = 0; l < kSha256Lanes; ++l) {
    std::memset(blocks[l], 0, sizeof(blocks[l]));
    for (int i = 0; i < 8; ++i) {
      const std::uint32_t v = states[l][static_cast<std::size_t>(i)];
      blocks[l][4 * i + 0] = static_cast<std::uint8_t>(v >> 24);
      blocks[l][4 * i + 1] = static_cast<std::uint8_t>(v >> 16);
      blocks[l][4 * i + 2] = static_cast<std::uint8_t>(v >> 8);
      blocks[l][4 * i + 3] = static_cast<std::uint8_t>(v);
    }
    blocks[l][32] = 0x80;
    blocks[l][62] = 0x03;  // 768 = 0x0300
    states[l] = keys[l]->outer_.chaining_state();
  }
  sha256_compress_x8(states, blocks);

  for (std::size_t l = 0; l < kSha256Lanes; ++l) {
    for (int i = 0; i < 8; ++i) {
      const std::uint32_t v = states[l][static_cast<std::size_t>(i)];
      out[l][static_cast<std::size_t>(4 * i + 0)] = static_cast<std::uint8_t>(v >> 24);
      out[l][static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(v >> 16);
      out[l][static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(v >> 8);
      out[l][static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(v);
    }
  }
  JRSND_COUNT_N("crypto.hmac.midstate.hits", kSha256Lanes);
}

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key, const std::string& message) noexcept {
  return hmac_sha256(key, std::span<const std::uint8_t>(
                              reinterpret_cast<const std::uint8_t*>(message.data()),
                              message.size()));
}

bool digest_equal(const Sha256Digest& a, const Sha256Digest& b) noexcept {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace jrsnd::crypto
