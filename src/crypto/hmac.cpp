#include "crypto/hmac.hpp"

#include <algorithm>
#include <array>

#include "obs/metrics_registry.hpp"

namespace jrsnd::crypto {

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> message) noexcept {
  static constexpr std::size_t kBlockSize = 64;

  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Sha256Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlockSize> ipad{};
  std::array<std::uint8_t, kBlockSize> opad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Sha256Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finalize();
}

HmacKey::HmacKey(std::span<const std::uint8_t> key) noexcept {
  static constexpr std::size_t kBlockSize = 64;
  JRSND_COUNT("crypto.hmac.midstate.builds");

  std::array<std::uint8_t, kBlockSize> key_block{};
  if (key.size() > kBlockSize) {
    const Sha256Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  std::array<std::uint8_t, kBlockSize> pad{};
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
  }
  inner_.update(pad);  // one compression; cached for every later mac()
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    pad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }
  outer_.update(pad);
}

Sha256Digest HmacKey::mac(std::span<const std::uint8_t> message) const noexcept {
  Sha256 inner_ctx = inner_;
  inner_ctx.update(message);
  return finish(inner_ctx);
}

Sha256Digest HmacKey::mac(const std::string& message) const noexcept {
  return mac(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(message.data()),
                                           message.size()));
}

Sha256Digest HmacKey::finish(Sha256& inner_ctx) const noexcept {
  JRSND_COUNT("crypto.hmac.midstate.hits");
  const Sha256Digest inner_digest = inner_ctx.finalize();
  Sha256 outer_ctx = outer_;
  outer_ctx.update(inner_digest);
  return outer_ctx.finalize();
}

Sha256Digest hmac_sha256(std::span<const std::uint8_t> key, const std::string& message) noexcept {
  return hmac_sha256(key, std::span<const std::uint8_t>(
                              reinterpret_cast<const std::uint8_t*>(message.data()),
                              message.size()));
}

bool digest_equal(const Sha256Digest& a, const Sha256Digest& b) noexcept {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace jrsnd::crypto
