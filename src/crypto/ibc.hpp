// Identity-based cryptography substrate (simulated pairing).
//
// The paper adopts the certificateless/IBC scheme of Zhang et al. [13]
// (pairing-based, in the Boneh-Franklin setting): every node A holds an
// ID-based private key K_A^{-1} issued by the MANET authority, any two nodes
// can non-interactively derive the same shared key K_AB = K_BA from (own
// private key, peer ID), and nodes sign messages verifiable with just the
// signer's ID.
//
// No pairing library is available offline, so we substitute the bilinear map
// with a *pairing oracle* keyed by the authority's master secret:
//
//   pair(A, B)            = HMAC(master, "pair" || min(A,B) || max(A,B))
//   sign_key(A)           = HMAC(master, "sig"  || A)
//   SIG_{K_A^{-1}}(msg)   = HMAC(sign_key(A), msg)
//
// The three properties JR-SND relies on are preserved: (1) A and B derive
// identical keys; (2) no third party's private key yields K_AB; (3) a
// signature binds (ID, message) and verifies against the ID alone. The
// oracle object is trusted simulation machinery standing in for the public
// system parameters + bilinear map; the simulated adversary never queries it
// for non-compromised identities (enforced by the adversary model, see
// src/adversary). Computation costs (t_key, t_sig, t_ver of Table I) are
// charged as simulated time by the protocol engines, not here.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "crypto/prf.hpp"
#include "crypto/sha256.hpp"

namespace jrsnd::crypto {

/// An ID-based signature. The cryptographic content is a 256-bit tag; the
/// paper's wire length l_sig = 672 bits (a BLS-style element) is accounted
/// for by the message codecs, not here.
struct IbcSignature {
  Sha256Digest tag{};

  bool operator==(const IbcSignature&) const = default;
};

/// Stand-in for the IBC public system parameters and the bilinear map.
/// Constructed only by IbcAuthority; shared read-only by all parties.
class PairingOracle {
 public:
  /// Verifies that `sig` is signer_id's signature over `message`.
  [[nodiscard]] bool verify(NodeId signer_id, std::span<const std::uint8_t> message,
                            const IbcSignature& sig) const noexcept;

 private:
  friend class IbcAuthority;
  friend class IbcPrivateKey;

  explicit PairingOracle(SymmetricKey master) noexcept : master_(master) {}

  [[nodiscard]] SymmetricKey pair_key(NodeId a, NodeId b) const noexcept;
  [[nodiscard]] SymmetricKey sign_key(NodeId id) const noexcept;

  SymmetricKey master_;
};

/// A node's ID-based private key K_A^{-1}. Only the authority mints these.
class IbcPrivateKey {
 public:
  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Non-interactive shared-key agreement: K_AB from (this key, peer ID).
  /// Symmetric: A.shared_key(B) == B.shared_key(A).
  [[nodiscard]] SymmetricKey shared_key(NodeId peer) const noexcept;

  /// ID-based signature over `message`, verifiable via PairingOracle::verify.
  [[nodiscard]] IbcSignature sign(std::span<const std::uint8_t> message) const noexcept;

 private:
  friend class IbcAuthority;
  IbcPrivateKey(NodeId id, std::shared_ptr<const PairingOracle> oracle) noexcept
      : id_(id), oracle_(std::move(oracle)) {}

  NodeId id_;
  std::shared_ptr<const PairingOracle> oracle_;
};

/// The MANET authority's key-generation center (KGC).
class IbcAuthority {
 public:
  /// Deterministic setup from a seed (so experiments are reproducible).
  explicit IbcAuthority(std::uint64_t master_seed) noexcept;

  /// Issues node `id`'s private key (done before network deployment).
  [[nodiscard]] IbcPrivateKey issue(NodeId id) const;

  /// The public system parameters handle, needed by verifiers.
  [[nodiscard]] std::shared_ptr<const PairingOracle> oracle() const noexcept { return oracle_; }

 private:
  std::shared_ptr<const PairingOracle> oracle_;
};

/// Message authentication code f_K(.) used in the D-NDP handshake:
/// HMAC-SHA-256 under the pairwise IBC key.
[[nodiscard]] Sha256Digest compute_mac(const SymmetricKey& key,
                                       std::span<const std::uint8_t> message) noexcept;

}  // namespace jrsnd::crypto
