// Session-spread-code derivation (paper §V-B, final D-NDP step):
//
//   C_AB = h_{K_AB}(n_A XOR n_B)
//
// where h_K(.) is a keyed cryptographic hash producing an N-bit output used
// as a fresh DSSS spread code known only to A and B. Both sides XOR the two
// nonces, so the derivation is symmetric (C_AB == C_BA) regardless of which
// side initiated.
#pragma once

#include <cstddef>

#include "common/bit_vector.hpp"
#include "crypto/prf.hpp"

namespace jrsnd::crypto {

/// Derives the N-bit session spread code from the pairwise key and the two
/// session nonces. `nonce_a` and `nonce_b` must have equal bit length
/// (l_n bits each per Table I).
[[nodiscard]] BitVector derive_session_code(const SymmetricKey& pair_key,
                                            const BitVector& nonce_a, const BitVector& nonce_b,
                                            std::size_t code_length_chips);

}  // namespace jrsnd::crypto
