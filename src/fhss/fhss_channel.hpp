// Slotted frequency-hopping medium.
//
// Time is divided into slots; in each slot every transmitter occupies one
// channel and every receiver listens on one. A receiver decodes a
// transmission iff it is alone on the transmitter's channel that slot (two
// transmitters on one channel collide, and a jammer "transmitter" on the
// channel destroys it too). This is the standard UFH evaluation model
// ([3]); the jammer gets `z` single-channel transmitters per slot.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "fhss/hop_sequence.hpp"

namespace jrsnd::fhss {

/// Identifies a transmitter within a slot.
using TxId = std::uint32_t;

class FhssChannel {
 public:
  explicit FhssChannel(std::uint32_t channel_count);

  [[nodiscard]] std::uint32_t channel_count() const noexcept { return channels_; }

  /// Begins a new slot (clears all per-slot occupancy).
  void begin_slot();

  /// Places transmitter `tx` on `channel` this slot (payload is an opaque
  /// id the receiver gets back on success).
  void transmit(TxId tx, Channel channel, std::uint64_t payload);

  /// The jammer burns one of its transmitters on `channel`.
  void jam(Channel channel);

  /// Jams `count` distinct channels chosen uniformly at random.
  void jam_random(std::uint32_t count, Rng& rng);

  /// What a receiver tuned to `channel` hears this slot: the payload if
  /// exactly one non-jammed transmission occupies the channel, nullopt on
  /// silence, collision, or jamming.
  [[nodiscard]] std::optional<std::uint64_t> listen(Channel channel) const;

  /// Diagnostics for the current slot.
  [[nodiscard]] std::size_t transmissions_this_slot() const noexcept { return tx_count_; }
  [[nodiscard]] std::size_t jammed_channels_this_slot() const noexcept { return jam_count_; }

 private:
  struct Occupancy {
    std::uint64_t payload = 0;
    std::uint32_t transmitters = 0;
    bool jammed = false;
  };

  std::uint32_t channels_;
  std::unordered_map<Channel, Occupancy> slot_;
  std::size_t tx_count_ = 0;
  std::size_t jam_count_ = 0;
};

}  // namespace jrsnd::fhss
