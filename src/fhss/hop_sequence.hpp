// Frequency-hopping sequences (substrate for the UFH baseline, paper §II).
//
// Coordinated FHSS peers derive their common hop sequence from a shared key
// via a PRF; uncoordinated (UFH) parties hop on independent random
// sequences and rely on chance coincidences. Both kinds are generated here:
// deterministic keyed sequences for post-discovery communication, and
// seeded random sequences for the UFH bootstrap.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "crypto/prf.hpp"

namespace jrsnd::fhss {

/// A channel index in [0, channel_count).
using Channel = std::uint32_t;

/// Abstract per-slot channel selector.
class HopSequence {
 public:
  virtual ~HopSequence() = default;

  /// The channel used during slot `slot`.
  [[nodiscard]] virtual Channel channel(std::uint64_t slot) const = 0;

  [[nodiscard]] virtual std::uint32_t channel_count() const noexcept = 0;
};

/// Keyed sequence: channel(t) = PRF_key("hop", t) mod c. Two nodes holding
/// the same key (e.g. the K_AB JR-SND establishes) hop in lockstep.
class KeyedHopSequence final : public HopSequence {
 public:
  KeyedHopSequence(const crypto::SymmetricKey& key, std::uint32_t channel_count);

  [[nodiscard]] Channel channel(std::uint64_t slot) const override;
  [[nodiscard]] std::uint32_t channel_count() const noexcept override { return channels_; }

 private:
  crypto::SymmetricKey key_;
  std::uint32_t channels_;
};

/// Uncoordinated sequence: an independent pseudorandom walk from a seed
/// (the UFH sender/receiver strategy — public as a *strategy*, private as a
/// realization).
class RandomHopSequence final : public HopSequence {
 public:
  RandomHopSequence(std::uint64_t seed, std::uint32_t channel_count);

  [[nodiscard]] Channel channel(std::uint64_t slot) const override;
  [[nodiscard]] std::uint32_t channel_count() const noexcept override { return channels_; }

 private:
  std::uint64_t seed_;
  std::uint32_t channels_;
};

}  // namespace jrsnd::fhss
