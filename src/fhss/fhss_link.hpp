// Channel-level FHSS simulations built on FhssChannel + hop sequences.
//
//   * FhssLink — a coordinated post-discovery link: both ends hop on the
//     keyed sequence derived from the pairwise key JR-SND established. A
//     jammer without the key covers z random channels per slot and hits
//     ~z/c of the traffic; a jammer WITH the key (leaked endpoint) hops in
//     lockstep and kills everything — the FH analogue of the paper's
//     compromised-code story.
//   * UfhChannelExchange — the UFH bootstrap of baselines/ufh.hpp re-run at
//     channel level: independent random hop sequences for sender and
//     receiver, per-slot jamming, fragment chain reassembly. Validates the
//     slot-abstraction UfhExchange the same way ChipPhy validates
//     AbstractPhy.
#pragma once

#include <cstdint>

#include "baselines/ufh.hpp"
#include "common/rng.hpp"
#include "fhss/fhss_channel.hpp"
#include "fhss/hop_sequence.hpp"

namespace jrsnd::fhss {

class FhssLink {
 public:
  /// A link keyed by `key` over `channel_count` channels.
  FhssLink(const crypto::SymmetricKey& key, std::uint32_t channel_count);

  struct Result {
    std::uint64_t slots = 0;
    std::uint64_t delivered = 0;
    [[nodiscard]] double delivery_rate() const {
      return slots == 0 ? 0.0 : static_cast<double>(delivered) / static_cast<double>(slots);
    }
  };

  /// Runs `slots` slots with the sender transmitting every slot. The jammer
  /// covers `jammer_channels` random channels per slot; if `jammer_has_key`
  /// it instead follows the keyed sequence exactly.
  [[nodiscard]] Result run(std::uint64_t slots, std::uint32_t jammer_channels,
                           bool jammer_has_key, Rng& rng) const;

 private:
  crypto::SymmetricKey key_;
  std::uint32_t channels_;
};

/// UFH fragment-chain transfer at channel level (cf. baselines::UfhExchange
/// which models the same process at slot-probability level).
class UfhChannelExchange {
 public:
  UfhChannelExchange(const baselines::UfhParams& params, Rng& rng);

  [[nodiscard]] baselines::UfhExchange::Result run(const baselines::UfhFragmentChain& chain,
                                                   std::uint64_t max_slots = 2000000);

 private:
  baselines::UfhParams params_;
  Rng& rng_;
};

}  // namespace jrsnd::fhss
