#include "fhss/fhss_channel.hpp"

#include <stdexcept>

namespace jrsnd::fhss {

FhssChannel::FhssChannel(std::uint32_t channel_count) : channels_(channel_count) {
  if (channel_count == 0) throw std::invalid_argument("FhssChannel: zero channels");
}

void FhssChannel::begin_slot() {
  slot_.clear();
  tx_count_ = 0;
  jam_count_ = 0;
}

void FhssChannel::transmit(TxId /*tx*/, Channel channel, std::uint64_t payload) {
  if (channel >= channels_) throw std::out_of_range("FhssChannel::transmit: bad channel");
  Occupancy& occ = slot_[channel];
  occ.payload = payload;
  ++occ.transmitters;
  ++tx_count_;
}

void FhssChannel::jam(Channel channel) {
  if (channel >= channels_) throw std::out_of_range("FhssChannel::jam: bad channel");
  Occupancy& occ = slot_[channel];
  if (!occ.jammed) {
    occ.jammed = true;
    ++jam_count_;
  }
}

void FhssChannel::jam_random(std::uint32_t count, Rng& rng) {
  if (count >= channels_) {
    for (Channel c = 0; c < channels_; ++c) jam(c);
    return;
  }
  for (const std::uint32_t c : rng.sample_without_replacement(channels_, count)) {
    jam(static_cast<Channel>(c));
  }
}

std::optional<std::uint64_t> FhssChannel::listen(Channel channel) const {
  const auto it = slot_.find(channel);
  if (it == slot_.end()) return std::nullopt;           // silence
  const Occupancy& occ = it->second;
  if (occ.jammed || occ.transmitters != 1) return std::nullopt;  // jam/collision
  return occ.payload;
}

}  // namespace jrsnd::fhss
