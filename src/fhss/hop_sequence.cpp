#include "fhss/hop_sequence.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"

namespace jrsnd::fhss {

KeyedHopSequence::KeyedHopSequence(const crypto::SymmetricKey& key,
                                   std::uint32_t channel_count)
    : key_(key), channels_(channel_count) {
  if (channel_count == 0) throw std::invalid_argument("KeyedHopSequence: zero channels");
}

Channel KeyedHopSequence::channel(std::uint64_t slot) const {
  std::vector<std::uint8_t> input = {'h', 'o', 'p'};
  for (int i = 7; i >= 0; --i) input.push_back(static_cast<std::uint8_t>(slot >> (8 * i)));
  const crypto::Sha256Digest digest = crypto::hmac_sha256(key_, input);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value = (value << 8) | digest[static_cast<std::size_t>(i)];
  return static_cast<Channel>(value % channels_);
}

RandomHopSequence::RandomHopSequence(std::uint64_t seed, std::uint32_t channel_count)
    : seed_(seed), channels_(channel_count) {
  if (channel_count == 0) throw std::invalid_argument("RandomHopSequence: zero channels");
}

Channel RandomHopSequence::channel(std::uint64_t slot) const {
  // Stateless per-slot mixing keeps channel(t) O(1) for any t.
  std::uint64_t state = seed_ ^ (slot * 0x9e3779b97f4a7c15ULL);
  return static_cast<Channel>(splitmix64(state) % channels_);
}

}  // namespace jrsnd::fhss
