#include "fhss/fhss_link.hpp"

#include <stdexcept>
#include <vector>

namespace jrsnd::fhss {

FhssLink::FhssLink(const crypto::SymmetricKey& key, std::uint32_t channel_count)
    : key_(key), channels_(channel_count) {}

FhssLink::Result FhssLink::run(std::uint64_t slots, std::uint32_t jammer_channels,
                               bool jammer_has_key, Rng& rng) const {
  const KeyedHopSequence sequence(key_, channels_);
  FhssChannel medium(channels_);
  Result result;
  result.slots = slots;
  for (std::uint64_t slot = 0; slot < slots; ++slot) {
    medium.begin_slot();
    const Channel ch = sequence.channel(slot);
    medium.transmit(/*tx=*/0, ch, /*payload=*/slot + 1);
    if (jammer_has_key) {
      medium.jam(ch);  // lockstep: the leaked key predicts every hop
    } else {
      medium.jam_random(jammer_channels, rng);
    }
    // The receiver hops on the same keyed sequence.
    if (medium.listen(ch).has_value()) ++result.delivered;
  }
  return result;
}

UfhChannelExchange::UfhChannelExchange(const baselines::UfhParams& params, Rng& rng)
    : params_(params), rng_(rng) {
  if (params.channels == 0 || params.jammed_channels >= params.channels) {
    throw std::invalid_argument("UfhChannelExchange: need jammed_channels < channels");
  }
}

baselines::UfhExchange::Result UfhChannelExchange::run(
    const baselines::UfhFragmentChain& chain, std::uint64_t max_slots) {
  const auto& fragments = chain.fragments();
  // Fresh independent hop walks for sender and receiver each exchange.
  const RandomHopSequence tx_hops(rng_.next(), params_.channels);
  const RandomHopSequence rx_hops(rng_.next(), params_.channels);
  FhssChannel medium(params_.channels);

  baselines::UfhExchange::Result result;
  std::vector<bool> have(fragments.size(), false);
  std::size_t have_count = 0;
  std::vector<baselines::UfhFragmentChain::Fragment> received;

  for (std::uint64_t slot = 0; slot < max_slots && have_count < fragments.size(); ++slot) {
    ++result.slots;
    medium.begin_slot();
    const std::uint64_t fragment_index = slot % fragments.size();
    medium.transmit(/*tx=*/0, tx_hops.channel(slot), fragment_index + 1);
    medium.jam_random(params_.jammed_channels, rng_);
    const auto heard = medium.listen(rx_hops.channel(slot));
    if (!heard.has_value()) continue;
    ++result.fragments_heard;
    const std::size_t index = static_cast<std::size_t>(*heard - 1);
    if (!have[index]) {
      have[index] = true;
      ++have_count;
      received.push_back(fragments[index]);
    }
  }
  result.seconds = static_cast<double>(result.slots) * params_.slot_seconds;
  if (have_count == fragments.size()) {
    baselines::UfhParams check = params_;
    check.fragments = static_cast<std::uint32_t>(fragments.size());
    result.reassembled =
        baselines::UfhFragmentChain::reassemble(check, received).has_value();
  }
  return result;
}

}  // namespace jrsnd::fhss
