#include "sim/field.hpp"

#include <algorithm>
#include <stdexcept>

namespace jrsnd::sim {

Field::Field(double width_m, double height_m) : width_(width_m), height_(height_m) {
  if (width_m <= 0.0 || height_m <= 0.0) throw std::invalid_argument("Field: non-positive size");
}

bool Field::contains(const Position& p) const noexcept {
  return p.x >= 0.0 && p.x <= width_ && p.y >= 0.0 && p.y <= height_;
}

Position Field::clamp(Position p) const noexcept {
  p.x = std::clamp(p.x, 0.0, width_);
  p.y = std::clamp(p.y, 0.0, height_);
  return p;
}

double expected_overlap_area(double radius) noexcept {
  return (M_PI - 3.0 * std::sqrt(3.0) / 4.0) * radius * radius;
}

double common_neighbor_fraction() noexcept {
  return 1.0 - 3.0 * std::sqrt(3.0) / (4.0 * M_PI);
}

}  // namespace jrsnd::sim
