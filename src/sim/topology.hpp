// Physical-neighbor topology: who is in whose transmission range.
//
// Built from a placement snapshot + transmission radius using the grid
// index. Exposes the queries the protocols and analysis need: adjacency,
// the list of physical-neighbor pairs (the denominator of every P-hat
// figure), average degree g (Theorem 3), and bounded-depth BFS used to
// evaluate M-NDP reachability over the logical graph.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "sim/field.hpp"

namespace jrsnd::sim {

class Topology {
 public:
  /// Builds the neighbor graph of `positions` with transmission `radius`.
  Topology(const Field& field, std::vector<Position> positions, double radius);

  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] double radius() const noexcept { return radius_; }
  [[nodiscard]] const Position& position(NodeId node) const;

  /// Physical neighbors of `node`, ascending.
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId node) const;

  [[nodiscard]] bool are_neighbors(NodeId a, NodeId b) const;

  /// Every unordered physical-neighbor pair (a < b).
  [[nodiscard]] const std::vector<std::pair<NodeId, NodeId>>& pairs() const noexcept {
    return pairs_;
  }

  /// Average physical degree g.
  [[nodiscard]] double average_degree() const noexcept;

 private:
  double radius_;
  std::vector<Position> positions_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;
};

/// An undirected logical graph over the same node ids (edges = discovered
/// pairs). Used for M-NDP: two physical neighbors indirectly discover each
/// other iff the logical graph connects them within nu hops.
class LogicalGraph {
 public:
  explicit LogicalGraph(std::size_t node_count);

  void add_edge(NodeId a, NodeId b);
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId node) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// True when a path of at most `max_hops` edges connects a and b.
  /// With `exclude_direct`, the single edge a-b (if present) is ignored —
  /// the M-NDP question "could A and B meet through intermediaries?" asked
  /// of a pair that already has a direct logical link.
  [[nodiscard]] bool reachable_within(NodeId a, NodeId b, std::size_t max_hops,
                                      bool exclude_direct = false) const;

  /// Hop distances from `source` up to `max_hops` (SIZE_MAX = unreachable).
  [[nodiscard]] std::vector<std::size_t> bfs_distances(NodeId source,
                                                       std::size_t max_hops) const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace jrsnd::sim
