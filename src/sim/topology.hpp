// Physical-neighbor topology: who is in whose transmission range.
//
// Built from a placement snapshot (or a live SpatialIndex) + transmission
// radius. Adjacency is stored in CSR form — one offsets array plus one flat
// neighbor slab — so a 10^5-10^6-node graph is two allocations, not n inner
// vectors. Exposes the queries the protocols and analysis need: adjacency
// spans, an iterator view over the physical-neighbor pairs (the denominator
// of every P-hat figure, no longer materialized), average degree g
// (Theorem 3), and bounded-depth BFS over the logical graph with reusable
// epoch-stamped scratch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/field.hpp"

namespace jrsnd::sim {

class SpatialIndex;

class Topology {
 public:
  /// Builds the neighbor graph of `positions` with transmission `radius`.
  Topology(const Field& field, std::vector<Position> positions, double radius);

  /// Builds the neighbor graph from a live (possibly incrementally updated)
  /// index: the rebuild path mobility workloads take each step. Produces
  /// bit-identical adjacency to the snapshot constructor over the same
  /// positions. Precondition: every node was inserted.
  Topology(const Field& field, const SpatialIndex& index, double radius);

  [[nodiscard]] std::size_t node_count() const noexcept { return positions_.size(); }
  [[nodiscard]] double radius() const noexcept { return radius_; }
  [[nodiscard]] const Position& position(NodeId node) const;

  /// Physical neighbors of `node`, ascending.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId node) const;

  [[nodiscard]] bool are_neighbors(NodeId a, NodeId b) const;

  /// Lazily iterated view over every unordered physical-neighbor pair
  /// (a < b), in ascending (a, b) order — nothing is materialized.
  class PairView {
   public:
    class iterator {
     public:
      using value_type = std::pair<NodeId, NodeId>;
      using difference_type = std::ptrdiff_t;
      using iterator_category = std::forward_iterator_tag;

      iterator() noexcept = default;
      iterator(const Topology* topo, std::uint32_t node, std::size_t pos) noexcept
          : topo_(topo), node_(node), pos_(pos) {}

      value_type operator*() const noexcept {
        return {node_id(node_), topo_->slab_[pos_]};
      }
      iterator& operator++() noexcept {
        ++pos_;
        advance();
        return *this;
      }
      iterator operator++(int) noexcept {
        iterator copy = *this;
        ++*this;
        return copy;
      }
      bool operator==(const iterator& o) const noexcept {
        return node_ == o.node_ && pos_ == o.pos_;
      }

     private:
      friend class PairView;
      /// Moves to the next slab position holding a neighbor > its row's id,
      /// hopping rows as needed. Rows are ascending, so within a row the
      /// upper neighbors form the tail starting at upper_begin(node).
      void advance() noexcept {
        const std::size_t n = topo_->offsets_.size() - 1;
        while (node_ < n && pos_ >= topo_->offsets_[node_ + 1]) {
          ++node_;
          if (node_ < n) pos_ = topo_->upper_begin(node_);
        }
      }

      const Topology* topo_ = nullptr;
      std::uint32_t node_ = 0;
      std::size_t pos_ = 0;
    };

    explicit PairView(const Topology* topo) noexcept : topo_(topo) {}

    [[nodiscard]] iterator begin() const noexcept {
      iterator it(topo_, 0, topo_->node_count() == 0 ? 0 : topo_->upper_begin(0));
      it.advance();
      return it;
    }
    [[nodiscard]] iterator end() const noexcept {
      const auto n = static_cast<std::uint32_t>(topo_->node_count());
      return iterator(topo_, n, topo_->slab_.size());
    }
    [[nodiscard]] std::size_t size() const noexcept { return topo_->pair_count(); }
    [[nodiscard]] bool empty() const noexcept { return size() == 0; }

   private:
    const Topology* topo_;
  };

  [[nodiscard]] PairView pairs() const noexcept { return PairView(this); }
  [[nodiscard]] std::size_t pair_count() const noexcept { return slab_.size() / 2; }

  /// Average physical degree g.
  [[nodiscard]] double average_degree() const noexcept;

 private:
  friend class PairView;

  /// Fills offsets_/slab_ from positions_ (counting-sorted cell grid +
  /// symmetric half scan; see topology.cpp).
  void build(const Field& field);

  /// First slab position of `node`'s row holding a neighbor id > node.
  [[nodiscard]] std::size_t upper_begin(std::uint32_t node) const noexcept;

  double radius_;
  std::vector<Position> positions_;
  std::vector<std::size_t> offsets_;  // node_count + 1 row boundaries
  std::vector<NodeId> slab_;          // flat adjacency, each row ascending
};

/// An undirected logical graph over the same node ids (edges = discovered
/// pairs). Used for M-NDP: two physical neighbors indirectly discover each
/// other iff the logical graph connects them within nu hops.
///
/// Adjacency is arena-backed: per-node chains threaded through one flat
/// half-edge slab, so add_edge never allocates per node. BFS queries reuse
/// epoch-stamped scratch — repeated reachability probes on a shared graph
/// allocate nothing after the first — which also makes the query methods
/// unsafe to call concurrently on one instance.
class LogicalGraph {
 public:
  explicit LogicalGraph(std::size_t node_count);

  void add_edge(NodeId a, NodeId b);
  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return head_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Neighbors of `node` in insertion order, appended to a cleared `out`.
  void neighbors_into(NodeId node, std::vector<NodeId>& out) const;

  /// True when a path of at most `max_hops` edges connects a and b.
  /// With `exclude_direct`, the single edge a-b (if present) is ignored —
  /// the M-NDP question "could A and B meet through intermediaries?" asked
  /// of a pair that already has a direct logical link.
  [[nodiscard]] bool reachable_within(NodeId a, NodeId b, std::size_t max_hops,
                                      bool exclude_direct = false) const;

  /// Hop distances from `source` up to `max_hops` (SIZE_MAX = unreachable).
  [[nodiscard]] std::vector<std::size_t> bfs_distances(NodeId source,
                                                       std::size_t max_hops) const;

 private:
  static constexpr std::uint32_t kNoEdge = 0xffffffffu;
  static constexpr std::uint32_t kUnreached32 = 0xffffffffu;

  struct HalfEdge {
    NodeId to;
    std::uint32_t next;  // arena index of the row's next half-edge
  };

  /// Claims a fresh scratch epoch, sizing/resetting the stamp arrays as
  /// needed, and seeds the BFS at `source`.
  void begin_search(NodeId source) const;

  std::vector<std::uint32_t> head_;  // per node: first half-edge or kNoEdge
  std::vector<std::uint32_t> tail_;  // per node: last half-edge (append O(1))
  std::vector<HalfEdge> arena_;
  std::size_t edge_count_ = 0;

  // Epoch-stamped BFS scratch: dist_[v] is valid iff seen_epoch_[v] equals
  // the current epoch, so queries skip the O(n) reset entirely.
  mutable std::vector<std::uint32_t> seen_epoch_;
  mutable std::vector<std::uint32_t> dist_;
  mutable std::vector<NodeId> frontier_;
  mutable std::uint32_t epoch_ = 0;
};

}  // namespace jrsnd::sim
