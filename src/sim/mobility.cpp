#include "sim/mobility.hpp"

#include <cassert>
#include <stdexcept>

namespace jrsnd::sim {

std::vector<Position> MobilityModel::snapshot(TimePoint t) const {
  std::vector<Position> out;
  out.reserve(node_count());
  for (std::uint32_t i = 0; i < node_count(); ++i) out.push_back(position(node_id(i), t));
  return out;
}

UniformPlacement::UniformPlacement(const Field& field, std::size_t node_count, Rng& rng) {
  positions_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    positions_.push_back({rng.uniform_real(0.0, field.width()),
                          rng.uniform_real(0.0, field.height())});
  }
}

Position UniformPlacement::position(NodeId node, TimePoint /*t*/) const {
  const std::uint32_t idx = raw(node);
  if (idx >= positions_.size()) throw std::out_of_range("UniformPlacement::position");
  return positions_[idx];
}

RandomWaypoint::RandomWaypoint(const Field& field, std::size_t node_count, const Params& params,
                               Rng& rng)
    : field_(field), params_(params) {
  if (params.min_speed_mps <= 0.0 || params.max_speed_mps < params.min_speed_mps) {
    throw std::invalid_argument("RandomWaypoint: bad speed range");
  }
  lanes_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) lanes_.emplace_back(rng.split());
}

void RandomWaypoint::extend_until(const Lane& lane, TimePoint t) const {
  if (lane.legs.empty()) {
    const Position start{lane.rng.uniform_real(0.0, field_.width()),
                         lane.rng.uniform_real(0.0, field_.height())};
    lane.legs.push_back(Leg{kSimStart, kSimStart, kSimStart, start, start});
  }
  while (lane.legs.back().next <= t) {
    const Leg& prev = lane.legs.back();
    Leg leg;
    leg.from = prev.to;
    leg.to = Position{lane.rng.uniform_real(0.0, field_.width()),
                      lane.rng.uniform_real(0.0, field_.height())};
    const double speed =
        lane.rng.uniform_real(params_.min_speed_mps, params_.max_speed_mps);
    const double travel = distance(leg.from, leg.to) / speed;
    leg.start = prev.next;
    leg.arrival = leg.start + seconds(travel);
    leg.next = leg.arrival + seconds(lane.rng.uniform_real(0.0, params_.max_pause_s));
    lane.legs.push_back(leg);
  }
}

Position RandomWaypoint::position(NodeId node, TimePoint t) const {
  const std::uint32_t idx = raw(node);
  if (idx >= lanes_.size()) throw std::out_of_range("RandomWaypoint::position");
  const Lane& lane = lanes_[idx];
  extend_until(lane, t);

  // Binary search for the leg containing t (legs are time-ordered).
  std::size_t lo = 0;
  std::size_t hi = lane.legs.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (lane.legs[mid].start <= t) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const Leg& leg = lane.legs[lo];
  if (t >= leg.arrival) return leg.to;  // paused at destination
  const double total = (leg.arrival - leg.start).seconds();
  if (total <= 0.0) return leg.to;
  const double frac = (t - leg.start).seconds() / total;
  return Position{leg.from.x + frac * (leg.to.x - leg.from.x),
                  leg.from.y + frac * (leg.to.y - leg.from.y)};
}

}  // namespace jrsnd::sim
