// Discrete-event simulation core.
//
// A single-threaded event queue ordered by simulated time (FIFO among equal
// timestamps, so protocol traces are deterministic). Scheduled events can be
// cancelled through their handle — used e.g. when a CONFIRM timer is
// disarmed because the response arrived first.
//
// Storage is a slab of event slots addressed by generation-counted handles:
// the heap holds POD entries only, callbacks live in reusable slots with
// small-buffer storage, and cancel is a generation bump — no tombstone hash
// set, no per-event heap allocation once the slab has warmed up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace jrsnd::sim {

class EventQueue {
 public:
  /// Move-only callable with 48 bytes of inline storage. Protocol timer
  /// lambdas (a handful of captured pointers) stay inline; larger or
  /// throwing-move callables fall back to one heap allocation.
  class Callback {
   public:
    Callback() noexcept = default;

    template <typename F,
              std::enable_if_t<!std::is_same_v<std::decay_t<F>, Callback> &&
                                   std::is_invocable_r_v<void, std::decay_t<F>&>,
                               int> = 0>
    // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function.
    Callback(F&& fn) {
      using Fn = std::decay_t<F>;
      if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
                    std::is_nothrow_move_constructible_v<Fn>) {
        ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
        static constexpr VTable vt{
            [](void* p) { (*static_cast<Fn*>(p))(); },
            [](void* dst, void* src) noexcept {
              ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
              static_cast<Fn*>(src)->~Fn();
            },
            [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
        };
        vtable_ = &vt;
      } else {
        auto* heap = new Fn(std::forward<F>(fn));
        ::new (static_cast<void*>(storage_)) Fn*(heap);
        static constexpr VTable vt{
            [](void* p) { (**static_cast<Fn**>(p))(); },
            [](void* dst, void* src) noexcept { ::new (dst) Fn*(*static_cast<Fn**>(src)); },
            [](void* p) noexcept { delete *static_cast<Fn**>(p); },
        };
        vtable_ = &vt;
      }
    }

    Callback(Callback&& other) noexcept : vtable_(other.vtable_) {
      if (vtable_ != nullptr) {
        vtable_->relocate(storage_, other.storage_);
        other.vtable_ = nullptr;
      }
    }
    Callback& operator=(Callback&& other) noexcept {
      if (this != &other) {
        reset();
        vtable_ = other.vtable_;
        if (vtable_ != nullptr) {
          vtable_->relocate(storage_, other.storage_);
          other.vtable_ = nullptr;
        }
      }
      return *this;
    }
    Callback(const Callback&) = delete;
    Callback& operator=(const Callback&) = delete;
    ~Callback() { reset(); }

    void operator()() { vtable_->invoke(storage_); }
    explicit operator bool() const noexcept { return vtable_ != nullptr; }
    void reset() noexcept {
      if (vtable_ != nullptr) {
        vtable_->destroy(storage_);
        vtable_ = nullptr;
      }
    }

   private:
    static constexpr std::size_t kInlineSize = 48;
    struct VTable {
      void (*invoke)(void*);
      void (*relocate)(void* dst, void* src) noexcept;
      void (*destroy)(void*) noexcept;
    };

    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
    const VTable* vtable_ = nullptr;
  };

  /// Identifies a scheduled event; valid until the event runs or is
  /// cancelled. Encodes (slot + 1, generation), so a handle is never 0 and a
  /// slot reused for a newer event rejects the stale handle.
  using EventHandle = std::uint64_t;

  EventQueue() = default;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedules `callback` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(TimePoint when, Callback callback);

  /// Schedules `callback` after `delay` from now.
  EventHandle schedule_after(Duration delay, Callback callback);

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled.
  bool cancel(EventHandle handle);

  /// True when no runnable events remain.
  [[nodiscard]] bool empty() const;

  /// Runs the next event; returns false when the queue is exhausted.
  bool step();

  /// Runs events until the queue drains or `limit` is reached.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with timestamps <= `until`, then advances the clock to
  /// `until` (even if idle). Returns the number of events executed.
  std::uint64_t run_until(TimePoint until);

  [[nodiscard]] std::size_t pending() const noexcept { return live_count_; }

  /// Installs a hook invoked every time the queue clock advances, with the
  /// new time — before the event at that time runs. Fault layers use it to
  /// keep time-driven schedules (crash windows) in lockstep with the
  /// simulation; pass nullptr to remove.
  void set_step_hook(std::function<void(TimePoint)> hook) {
    step_hook_ = std::move(hook);
  }

 private:
  struct Slot {
    Callback callback;
    std::uint32_t generation = 1;  // bumped on release; 0 is skipped
    bool armed = false;
  };
  struct HeapEntry {
    TimePoint when;
    std::uint64_t sequence;  // tie-break: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  [[nodiscard]] bool pop_live(HeapEntry& out);
  /// Clears the slot's callback, bumps its generation (invalidating every
  /// outstanding handle to it), and returns it to the free list.
  void release_slot(std::uint32_t slot) noexcept;

  std::function<void(TimePoint)> step_hook_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  TimePoint now_{0.0};
  std::uint64_t next_sequence_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace jrsnd::sim
