// Discrete-event simulation core.
//
// A single-threaded event queue ordered by simulated time (FIFO among equal
// timestamps, so protocol traces are deterministic). Scheduled events can be
// cancelled through their handle — used e.g. when a CONFIRM timer is
// disarmed because the response arrived first.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace jrsnd::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Identifies a scheduled event; valid until the event runs or is
  /// cancelled.
  using EventHandle = std::uint64_t;

  EventQueue() = default;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  /// Schedules `callback` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(TimePoint when, Callback callback);

  /// Schedules `callback` after `delay` from now.
  EventHandle schedule_after(Duration delay, Callback callback);

  /// Cancels a pending event. Returns false if it already ran or was
  /// cancelled.
  bool cancel(EventHandle handle);

  /// True when no runnable events remain.
  [[nodiscard]] bool empty() const;

  /// Runs the next event; returns false when the queue is exhausted.
  bool step();

  /// Runs events until the queue drains or `limit` is reached.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with timestamps <= `until`, then advances the clock to
  /// `until` (even if idle). Returns the number of events executed.
  std::uint64_t run_until(TimePoint until);

  [[nodiscard]] std::size_t pending() const noexcept { return live_count_; }

  /// Installs a hook invoked every time the queue clock advances, with the
  /// new time — before the event at that time runs. Fault layers use it to
  /// keep time-driven schedules (crash windows) in lockstep with the
  /// simulation; pass nullptr to remove.
  void set_step_hook(std::function<void(TimePoint)> hook) {
    step_hook_ = std::move(hook);
  }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t sequence;  // tie-break: FIFO among equal timestamps
    EventHandle handle;
    Callback callback;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  [[nodiscard]] bool pop_next(Entry& out);

  std::function<void(TimePoint)> step_hook_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventHandle> cancelled_;  // tombstones for lazy deletion
  TimePoint now_{0.0};
  std::uint64_t next_sequence_ = 0;
  EventHandle next_handle_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace jrsnd::sim
