// Node placement and mobility models.
//
// The paper's figures are snapshot averages over uniform random topologies;
// UniformPlacement reproduces those. RandomWaypoint adds the classic MANET
// mobility model (pick destination, move at uniform-random speed, pause,
// repeat) for the mobility-driven examples and the periodic-rediscovery
// integration tests.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/field.hpp"

namespace jrsnd::sim {

/// Abstract mobility: positions of n nodes at any simulated time.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  [[nodiscard]] virtual std::size_t node_count() const noexcept = 0;

  /// Position of `node` at time `t`. Precondition: raw(node) < node_count().
  [[nodiscard]] virtual Position position(NodeId node, TimePoint t) const = 0;

  /// Positions of all nodes at time `t`, indexed by raw node id.
  [[nodiscard]] std::vector<Position> snapshot(TimePoint t) const;
};

/// Static nodes placed uniformly at random in the field.
class UniformPlacement final : public MobilityModel {
 public:
  UniformPlacement(const Field& field, std::size_t node_count, Rng& rng);

  [[nodiscard]] std::size_t node_count() const noexcept override { return positions_.size(); }
  [[nodiscard]] Position position(NodeId node, TimePoint t) const override;

 private:
  std::vector<Position> positions_;
};

/// Random-waypoint mobility. Each node's trajectory is generated lazily and
/// deterministically from the model seed, so position(node, t) is pure.
class RandomWaypoint final : public MobilityModel {
 public:
  struct Params {
    double min_speed_mps = 1.0;
    double max_speed_mps = 10.0;
    double max_pause_s = 5.0;
  };

  RandomWaypoint(const Field& field, std::size_t node_count, const Params& params, Rng& rng);

  [[nodiscard]] std::size_t node_count() const noexcept override { return lanes_.size(); }
  [[nodiscard]] Position position(NodeId node, TimePoint t) const override;

 private:
  struct Leg {
    TimePoint start;     // departure time from `from` (after any pause)
    TimePoint arrival;   // arrival time at `to`
    TimePoint next;      // arrival + pause: when the following leg departs
    Position from;
    Position to;
  };
  struct Lane {
    mutable std::vector<Leg> legs;  // grown on demand; derived from seed
    mutable Rng rng;                // per-node deterministic stream
    explicit Lane(Rng r) : rng(r) {}
  };

  void extend_until(const Lane& lane, TimePoint t) const;

  Field field_;
  Params params_;
  std::vector<Lane> lanes_;
};

}  // namespace jrsnd::sim
