#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/event_log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/prof/perf_counters.hpp"

namespace jrsnd::sim {

namespace {

constexpr EventQueue::EventHandle make_handle(std::uint32_t slot, std::uint32_t generation) {
  return (static_cast<std::uint64_t>(slot) + 1) << 32 | generation;
}

}  // namespace

EventQueue::EventHandle EventQueue::schedule_at(TimePoint when, Callback callback) {
  if (when < now_) throw std::invalid_argument("EventQueue::schedule_at: time in the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.callback = std::move(callback);
  s.armed = true;
  heap_.push(HeapEntry{when, next_sequence_++, slot, s.generation});
  ++live_count_;
  JRSND_COUNT("sim.queue.scheduled");
  JRSND_GAUGE_MAX("sim.queue.depth.highwater", live_count_);
  JRSND_GAUGE_MAX("sim.queue.slab.highwater", slots_.size());
  return make_handle(slot, s.generation);
}

EventQueue::EventHandle EventQueue::schedule_after(Duration delay, Callback callback) {
  return schedule_at(now_ + delay, std::move(callback));
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.callback.reset();
  s.armed = false;
  if (++s.generation == 0) s.generation = 1;
  free_slots_.push_back(slot);
}

bool EventQueue::cancel(EventHandle handle) {
  const std::uint64_t slot_plus1 = handle >> 32;
  if (slot_plus1 == 0 || slot_plus1 > slots_.size()) return false;
  const auto slot = static_cast<std::uint32_t>(slot_plus1 - 1);
  const auto generation = static_cast<std::uint32_t>(handle);
  const Slot& s = slots_[slot];
  // A run or earlier cancel bumped the generation, so stale handles (and the
  // reused slot's newer event) are rejected here without any tombstone set.
  if (!s.armed || s.generation != generation) return false;
  release_slot(slot);
  --live_count_;
  JRSND_COUNT("sim.queue.cancelled");
  return true;
}

bool EventQueue::pop_live(HeapEntry& out) {
  while (!heap_.empty()) {
    const HeapEntry entry = heap_.top();
    heap_.pop();
    const Slot& s = slots_[entry.slot];
    if (!s.armed || s.generation != entry.generation) continue;  // cancelled
    out = entry;
    return true;
  }
  return false;
}

bool EventQueue::empty() const { return live_count_ == 0; }

bool EventQueue::step() {
  HeapEntry entry;
  if (!pop_live(entry)) return false;
  // Move the callback out and free the slot before invoking, so the event
  // can schedule follow-ups into its own slot and cancelling its (now stale)
  // handle correctly fails.
  Callback callback = std::move(slots_[entry.slot].callback);
  release_slot(entry.slot);
  --live_count_;
  assert(entry.when >= now_);
  if (step_hook_ && entry.when != now_) step_hook_(entry.when);
  now_ = entry.when;
  JRSND_COUNT("sim.events.processed");
  // Publish the queue clock so trace events carry simulated seconds.
  if (obs::tracing_enabled()) obs::event_log().set_sim_time(now_.seconds());
  callback();
  return true;
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  JRSND_PERF_REGION("sim.queue.drain");
  std::uint64_t executed = 0;
  while (executed < limit && step()) ++executed;
  return executed;
}

std::uint64_t EventQueue::run_until(TimePoint until) {
  JRSND_PERF_REGION("sim.queue.drain");
  std::uint64_t executed = 0;
  while (!heap_.empty()) {
    // Peek through stale entries without consuming a live entry early.
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.top();
      const Slot& s = slots_[top.slot];
      if (s.armed && s.generation == top.generation) break;
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().when > until) break;
    step();
    ++executed;
  }
  if (now_ < until) {
    if (step_hook_) step_hook_(until);
    now_ = until;
  }
  return executed;
}

}  // namespace jrsnd::sim
