#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/event_log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/prof/perf_counters.hpp"

namespace jrsnd::sim {

EventQueue::EventHandle EventQueue::schedule_at(TimePoint when, Callback callback) {
  if (when < now_) throw std::invalid_argument("EventQueue::schedule_at: time in the past");
  const EventHandle handle = next_handle_++;
  heap_.push(Entry{when, next_sequence_++, handle, std::move(callback)});
  ++live_count_;
  JRSND_GAUGE_MAX("sim.queue.depth.highwater", live_count_);
  return handle;
}

EventQueue::EventHandle EventQueue::schedule_after(Duration delay, Callback callback) {
  return schedule_at(now_ + delay, std::move(callback));
}

bool EventQueue::cancel(EventHandle handle) {
  if (handle == 0 || handle >= next_handle_) return false;
  // Lazy deletion: mark the handle; the heap entry is discarded when popped.
  if (!cancelled_.insert(handle).second) return false;
  if (live_count_ == 0) {
    cancelled_.erase(handle);
    return false;
  }
  --live_count_;
  return true;
}

bool EventQueue::pop_next(Entry& out) {
  while (!heap_.empty()) {
    Entry entry = heap_.top();
    heap_.pop();
    const auto it = cancelled_.find(entry.handle);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    out = std::move(entry);
    return true;
  }
  return false;
}

bool EventQueue::empty() const { return live_count_ == 0; }

bool EventQueue::step() {
  Entry entry;
  if (!pop_next(entry)) return false;
  --live_count_;
  assert(entry.when >= now_);
  if (step_hook_ && entry.when != now_) step_hook_(entry.when);
  now_ = entry.when;
  JRSND_COUNT("sim.events.processed");
  // Publish the queue clock so trace events carry simulated seconds.
  if (obs::tracing_enabled()) obs::event_log().set_sim_time(now_.seconds());
  entry.callback();
  return true;
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  JRSND_PERF_REGION("sim.queue.drain");
  std::uint64_t executed = 0;
  while (executed < limit && step()) ++executed;
  return executed;
}

std::uint64_t EventQueue::run_until(TimePoint until) {
  JRSND_PERF_REGION("sim.queue.drain");
  std::uint64_t executed = 0;
  while (!heap_.empty()) {
    // Peek through tombstones without consuming a live entry early.
    while (!heap_.empty() && cancelled_.contains(heap_.top().handle)) {
      cancelled_.erase(heap_.top().handle);
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().when > until) break;
    step();
    ++executed;
  }
  if (now_ < until) {
    if (step_hook_) step_hook_(until);
    now_ = until;
  }
  return executed;
}

}  // namespace jrsnd::sim
