#include "sim/topology.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <stdexcept>

#include "sim/spatial_index.hpp"

namespace jrsnd::sim {

Topology::Topology(const Field& field, std::vector<Position> positions, double radius)
    : radius_(radius), positions_(std::move(positions)), adjacency_(positions_.size()) {
  if (radius <= 0.0) throw std::invalid_argument("Topology: non-positive radius");
  const SpatialIndex index(field, positions_, radius);
  for (std::uint32_t i = 0; i < positions_.size(); ++i) {
    adjacency_[i] = index.within(positions_[i], radius, node_id(i));
    for (const NodeId j : adjacency_[i]) {
      if (raw(j) > i) pairs_.emplace_back(node_id(i), j);
    }
  }
}

const Position& Topology::position(NodeId node) const {
  const std::uint32_t idx = raw(node);
  if (idx >= positions_.size()) throw std::out_of_range("Topology::position");
  return positions_[idx];
}

const std::vector<NodeId>& Topology::neighbors(NodeId node) const {
  const std::uint32_t idx = raw(node);
  if (idx >= adjacency_.size()) throw std::out_of_range("Topology::neighbors");
  return adjacency_[idx];
}

bool Topology::are_neighbors(NodeId a, NodeId b) const {
  const auto& adj = neighbors(a);
  return std::binary_search(adj.begin(), adj.end(), b);
}

double Topology::average_degree() const noexcept {
  if (adjacency_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return static_cast<double>(total) / static_cast<double>(adjacency_.size());
}

LogicalGraph::LogicalGraph(std::size_t node_count) : adjacency_(node_count) {}

void LogicalGraph::add_edge(NodeId a, NodeId b) {
  assert(raw(a) < adjacency_.size() && raw(b) < adjacency_.size() && a != b);
  auto& la = adjacency_[raw(a)];
  if (std::find(la.begin(), la.end(), b) != la.end()) return;
  la.push_back(b);
  adjacency_[raw(b)].push_back(a);
  ++edge_count_;
}

bool LogicalGraph::has_edge(NodeId a, NodeId b) const {
  const auto& la = adjacency_[raw(a)];
  return std::find(la.begin(), la.end(), b) != la.end();
}

const std::vector<NodeId>& LogicalGraph::neighbors(NodeId node) const {
  const std::uint32_t idx = raw(node);
  if (idx >= adjacency_.size()) throw std::out_of_range("LogicalGraph::neighbors");
  return adjacency_[idx];
}

std::vector<std::size_t> LogicalGraph::bfs_distances(NodeId source, std::size_t max_hops) const {
  constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(adjacency_.size(), kUnreached);
  std::deque<NodeId> frontier;
  dist[raw(source)] = 0;
  frontier.push_back(source);
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    const std::size_t d = dist[raw(cur)];
    if (d == max_hops) continue;
    for (const NodeId next : adjacency_[raw(cur)]) {
      if (dist[raw(next)] == kUnreached) {
        dist[raw(next)] = d + 1;
        frontier.push_back(next);
      }
    }
  }
  return dist;
}

bool LogicalGraph::reachable_within(NodeId a, NodeId b, std::size_t max_hops,
                                    bool exclude_direct) const {
  if (a == b) return true;
  // Early-exit BFS bounded by max_hops.
  constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(adjacency_.size(), kUnreached);
  std::deque<NodeId> frontier;
  dist[raw(a)] = 0;
  frontier.push_back(a);
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    const std::size_t d = dist[raw(cur)];
    if (d == max_hops) continue;
    for (const NodeId next : adjacency_[raw(cur)]) {
      if (next == b) {
        if (exclude_direct && cur == a) continue;  // skip the direct edge
        return true;
      }
      if (dist[raw(next)] == kUnreached) {
        dist[raw(next)] = d + 1;
        frontier.push_back(next);
      }
    }
  }
  return false;
}

}  // namespace jrsnd::sim
