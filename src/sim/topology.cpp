#include "sim/topology.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/spatial_index.hpp"

namespace jrsnd::sim {

Topology::Topology(const Field& field, std::vector<Position> positions, double radius)
    : radius_(radius), positions_(std::move(positions)) {
  build(field);
}

Topology::Topology(const Field& field, const SpatialIndex& index, double radius)
    : radius_(radius), positions_(index.positions().begin(), index.positions().end()) {
  if (index.size() != index.capacity()) {
    throw std::invalid_argument("Topology: index holds uninserted nodes");
  }
  build(field);
}

// Sort-free CSR build over a counting-sorted cell grid.
//
// Nodes are bucketed into radius-sized cells (same geometry and clamping as
// SpatialIndex::cell_of), stored contiguously with positions inline so the
// candidate scan is cache-linear; counting sort is stable, so ids ascend
// within each cell and across each row-major row of cells. Per cell the 3x3
// window is gathered once (three contiguous slab ranges) and every member
// runs a fused branchless scan over it: the candidate id is stored
// unconditionally and the cursor advances only when `in_range & (id > a)`,
// so the scan retires no data-dependent branches. The distance predicate
// (strict `dx*dx + dy*dy < r2`, candidate minus center) is kept bit-for-bit
// identical to SpatialIndex::within_into so adjacency matches the historical
// per-node-query build exactly.
//
// The collected upper runs are per-node contiguous but not sorted, and never
// need to be: degrees come from a bucket count over the upper array, and two
// scatter passes emit every row in ascending order without comparisons.
// Scatter 1 walks a ascending and appends a to row b for each upper
// neighbor b, so every row's lower section fills in ascending order.
// Scatter 2 walks b ascending, reads row b's now-complete sorted lower
// section, and appends b to row a's upper section for each lower neighbor a
// — again ascending because b ascends. Reads touch only lower sections and
// writes only upper sections, so the in-place transpose is safe.
void Topology::build(const Field& field) {
  if (radius_ <= 0.0) throw std::invalid_argument("Topology: non-positive radius");
  const std::size_t n = positions_.size();
  offsets_.assign(n + 1, 0);
  slab_.clear();
  if (n == 0) return;

  const double cell_size = std::max(radius_, 1e-9);
  const std::size_t cols = static_cast<std::size_t>(std::ceil(field.width() / cell_size)) + 1;
  const std::size_t rows = static_cast<std::size_t>(std::ceil(field.height() / cell_size)) + 1;

  struct CellEntry {
    double x, y;
    std::uint32_t id;
  };
  // All counting scratch is u32: at city scale the hot random-access arrays
  // (degrees, fill cursors) must stay L2-resident, and halving their width
  // is worth more than the final widen into offsets_ costs. The scratch is
  // thread_local so city-scale rebuild loops reuse warm, already-faulted
  // pages instead of paying ~20 ms of mmap traffic per 100k-node build; each
  // thread retains its high-water footprint (~15 MB at 100k nodes).
  struct BuildScratch {
    std::vector<std::uint32_t> cell_of, cell_start, cursor;
    std::vector<std::uint32_t> upper_start, upper_cnt, upper;
    std::vector<std::uint32_t> lower_cnt, off32, fill;
    std::vector<CellEntry> entries, window;
  };
  static thread_local BuildScratch scratch;

  std::vector<std::uint32_t>& cell_of = scratch.cell_of;
  std::vector<std::uint32_t>& cell_start = scratch.cell_start;
  cell_of.resize(n);
  cell_start.assign(cols * rows + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto cx =
        std::min(static_cast<std::size_t>(std::max(positions_[i].x, 0.0) / cell_size), cols - 1);
    const auto cy =
        std::min(static_cast<std::size_t>(std::max(positions_[i].y, 0.0) / cell_size), rows - 1);
    cell_of[i] = static_cast<std::uint32_t>(cy * cols + cx);
    ++cell_start[cell_of[i] + 1];
  }
  for (std::size_t c = 1; c < cell_start.size(); ++c) cell_start[c] += cell_start[c - 1];
  std::vector<CellEntry>& entries = scratch.entries;
  entries.resize(n);
  {
    std::vector<std::uint32_t>& cursor = scratch.cursor;
    cursor.assign(cell_start.begin(), cell_start.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      entries[cursor[cell_of[i]]++] = {positions_[i].x, positions_[i].y,
                                       static_cast<std::uint32_t>(i)};
    }
  }

  // Pass 1: fused branchless scan collecting each node's upper neighbors
  // (id > node), unsorted within the run.
  std::vector<std::uint32_t>& upper_start = scratch.upper_start;
  std::vector<std::uint32_t>& upper_cnt = scratch.upper_cnt;
  std::vector<std::uint32_t>& upper = scratch.upper;
  upper_start.resize(n);
  upper_cnt.resize(n);
  if (upper.size() < std::max<std::size_t>(n, 64)) upper.resize(std::max<std::size_t>(n, 64));
  std::size_t upper_size = 0;
  std::vector<CellEntry>& window = scratch.window;
  window.reserve(512);
  const double r2 = radius_ * radius_;
  for (std::size_t cy = 0; cy < rows; ++cy) {
    for (std::size_t cx = 0; cx < cols; ++cx) {
      const std::size_t c = cy * cols + cx;
      const std::size_t c_begin = cell_start[c];
      const std::size_t c_end = cell_start[c + 1];
      if (c_begin == c_end) continue;
      const std::size_t x_lo = cx > 0 ? cx - 1 : 0;
      const std::size_t y_lo = cy > 0 ? cy - 1 : 0;
      const std::size_t x_hi = std::min(cx + 1, cols - 1);
      const std::size_t y_hi = std::min(cy + 1, rows - 1);
      window.clear();
      for (std::size_t y = y_lo; y <= y_hi; ++y) {
        window.insert(window.end(),
                      entries.begin() + static_cast<std::ptrdiff_t>(cell_start[y * cols + x_lo]),
                      entries.begin() + static_cast<std::ptrdiff_t>(cell_start[y * cols + x_hi + 1]));
      }
      const std::size_t wn = window.size();
      // The branchless store below writes (then conditionally keeps) up to
      // wn slots per member node, so reserve the cell's worst case up front.
      const std::size_t need = upper_size + (c_end - c_begin) * wn;
      if (upper.size() < need) upper.resize(std::max(upper.size() * 2, need));
      const CellEntry* w = window.data();
      for (std::size_t k = c_begin; k < c_end; ++k) {
        const std::uint32_t a = entries[k].id;
        const double px = entries[k].x;
        const double py = entries[k].y;
        const std::size_t before = upper_size;
        for (std::size_t q = 0; q < wn; ++q) {
          const double dx = w[q].x - px;
          const double dy = w[q].y - py;
          const bool in = (dx * dx + dy * dy < r2) & (w[q].id > a);
          upper[upper_size] = w[q].id;
          upper_size += in;
        }
        upper_start[a] = static_cast<std::uint32_t>(before);
        upper_cnt[a] = static_cast<std::uint32_t>(upper_size - before);
      }
    }
  }

  // Degrees: bucket-count the upper array (lower degree), then add each
  // node's own upper count, then prefix-sum.
  std::vector<std::uint32_t>& lower_cnt = scratch.lower_cnt;
  std::vector<std::uint32_t>& off32 = scratch.off32;
  lower_cnt.resize(n);
  off32.assign(n + 1, 0);
  {
    std::uint32_t* deg = off32.data() + 1;
    for (std::size_t k = 0; k < upper_size; ++k) ++deg[upper[k]];
    for (std::size_t a = 0; a < n; ++a) {
      lower_cnt[a] = deg[a];
      deg[a] += upper_cnt[a];
    }
    std::uint64_t total = 0;
    for (std::size_t i = 1; i <= n; ++i) {
      total += off32[i];
      off32[i] += off32[i - 1];
    }
    if (total > std::numeric_limits<std::uint32_t>::max()) {
      throw std::length_error("Topology: adjacency exceeds u32 offset range");
    }
  }

  slab_.resize(off32[n]);
  std::vector<std::uint32_t>& fill = scratch.fill;
  fill.assign(off32.begin(), off32.end() - 1);
  // Scatter 1: lower sections, ascending because a ascends.
  for (std::size_t a = 0; a < n; ++a) {
    const std::uint32_t* run = upper.data() + upper_start[a];
    const NodeId id_a = node_id(static_cast<std::uint32_t>(a));
    for (std::uint32_t q = 0; q < upper_cnt[a]; ++q) slab_[fill[run[q]]++] = id_a;
  }
  // Scatter 2: transpose the sorted lower sections into the upper sections.
  for (std::size_t a = 0; a < n; ++a) fill[a] = off32[a] + lower_cnt[a];
  for (std::size_t b = 0; b < n; ++b) {
    const NodeId* low = slab_.data() + off32[b];
    const NodeId id_b = node_id(static_cast<std::uint32_t>(b));
    for (std::uint32_t q = 0; q < lower_cnt[b]; ++q) slab_[fill[raw(low[q])]++] = id_b;
  }
  for (std::size_t i = 0; i <= n; ++i) offsets_[i] = off32[i];
}

const Position& Topology::position(NodeId node) const {
  const std::uint32_t idx = raw(node);
  if (idx >= positions_.size()) throw std::out_of_range("Topology::position");
  return positions_[idx];
}

std::span<const NodeId> Topology::neighbors(NodeId node) const {
  const std::uint32_t idx = raw(node);
  if (idx >= positions_.size()) throw std::out_of_range("Topology::neighbors");
  return {slab_.data() + offsets_[idx], offsets_[idx + 1] - offsets_[idx]};
}

bool Topology::are_neighbors(NodeId a, NodeId b) const {
  const auto adj = neighbors(a);
  return std::binary_search(adj.begin(), adj.end(), b);
}

std::size_t Topology::upper_begin(std::uint32_t node) const noexcept {
  const auto row_begin = slab_.begin() + static_cast<std::ptrdiff_t>(offsets_[node]);
  const auto row_end = slab_.begin() + static_cast<std::ptrdiff_t>(offsets_[node + 1]);
  return static_cast<std::size_t>(std::upper_bound(row_begin, row_end, node_id(node)) -
                                  slab_.begin());
}

double Topology::average_degree() const noexcept {
  if (positions_.empty()) return 0.0;
  return static_cast<double>(slab_.size()) / static_cast<double>(positions_.size());
}

LogicalGraph::LogicalGraph(std::size_t node_count)
    : head_(node_count, kNoEdge), tail_(node_count, kNoEdge) {}

void LogicalGraph::add_edge(NodeId a, NodeId b) {
  assert(raw(a) < head_.size() && raw(b) < head_.size() && a != b);
  if (has_edge(a, b)) return;
  for (const NodeId from : {a, b}) {
    const NodeId to = from == a ? b : a;
    const auto idx = static_cast<std::uint32_t>(arena_.size());
    arena_.push_back({to, kNoEdge});
    if (tail_[raw(from)] == kNoEdge) {
      head_[raw(from)] = idx;
    } else {
      arena_[tail_[raw(from)]].next = idx;
    }
    tail_[raw(from)] = idx;
  }
  ++edge_count_;
}

bool LogicalGraph::has_edge(NodeId a, NodeId b) const {
  assert(raw(a) < head_.size());
  for (std::uint32_t e = head_[raw(a)]; e != kNoEdge; e = arena_[e].next) {
    if (arena_[e].to == b) return true;
  }
  return false;
}

void LogicalGraph::neighbors_into(NodeId node, std::vector<NodeId>& out) const {
  const std::uint32_t idx = raw(node);
  if (idx >= head_.size()) throw std::out_of_range("LogicalGraph::neighbors_into");
  out.clear();
  for (std::uint32_t e = head_[idx]; e != kNoEdge; e = arena_[e].next) {
    out.push_back(arena_[e].to);
  }
}

void LogicalGraph::begin_search(NodeId source) const {
  const std::size_t n = head_.size();
  if (seen_epoch_.size() != n) {
    seen_epoch_.assign(n, 0);
    dist_.resize(n);
    epoch_ = 0;
  }
  if (++epoch_ == 0) {
    // u32 epoch wrapped: stale stamps could collide, so pay the one-off reset.
    std::fill(seen_epoch_.begin(), seen_epoch_.end(), 0u);
    epoch_ = 1;
  }
  frontier_.clear();
  seen_epoch_[raw(source)] = epoch_;
  dist_[raw(source)] = 0;
  frontier_.push_back(source);
}

std::vector<std::size_t> LogicalGraph::bfs_distances(NodeId source, std::size_t max_hops) const {
  assert(raw(source) < head_.size());
  begin_search(source);
  std::size_t next_up = 0;
  while (next_up < frontier_.size()) {
    const NodeId cur = frontier_[next_up++];
    const std::size_t d = dist_[raw(cur)];
    if (d == max_hops) continue;
    for (std::uint32_t e = head_[raw(cur)]; e != kNoEdge; e = arena_[e].next) {
      const std::uint32_t v = raw(arena_[e].to);
      if (seen_epoch_[v] != epoch_) {
        seen_epoch_[v] = epoch_;
        dist_[v] = static_cast<std::uint32_t>(d + 1);
        frontier_.push_back(arena_[e].to);
      }
    }
  }
  constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> out(head_.size(), kUnreached);
  for (std::size_t v = 0; v < head_.size(); ++v) {
    if (seen_epoch_[v] == epoch_) out[v] = dist_[v];
  }
  return out;
}

bool LogicalGraph::reachable_within(NodeId a, NodeId b, std::size_t max_hops,
                                    bool exclude_direct) const {
  if (a == b) return true;
  assert(raw(a) < head_.size() && raw(b) < head_.size());
  // Early-exit BFS bounded by max_hops; b is recognized on discovery rather
  // than on dequeue, and with exclude_direct the a->b edge itself is skipped
  // (b stays unmarked so an indirect route can still find it).
  begin_search(a);
  std::size_t next_up = 0;
  while (next_up < frontier_.size()) {
    const NodeId cur = frontier_[next_up++];
    const std::size_t d = dist_[raw(cur)];
    if (d == max_hops) continue;
    for (std::uint32_t e = head_[raw(cur)]; e != kNoEdge; e = arena_[e].next) {
      const NodeId next = arena_[e].to;
      if (next == b) {
        if (exclude_direct && cur == a) continue;  // skip the direct edge
        return true;
      }
      if (seen_epoch_[raw(next)] != epoch_) {
        seen_epoch_[raw(next)] = epoch_;
        dist_[raw(next)] = static_cast<std::uint32_t>(d + 1);
        frontier_.push_back(next);
      }
    }
  }
  return false;
}

}  // namespace jrsnd::sim
