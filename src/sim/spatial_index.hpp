// Incremental uniform-grid spatial index for O(1)-neighborhood range queries
// at city scale (10^5-10^6 nodes).
//
// Cell membership lives in flat node-indexed slabs — an intrusive doubly
// linked list per cell (head array + next/prev arrays), no inner vectors —
// so moving a node between cells under mobility is O(1) and never touches
// the heap. Queries fill a caller-owned vector (`within_into`), which makes
// the steady-state update/query loop allocation-free once the scratch has
// grown to its working size. The historical build-from-snapshot constructor
// remains as a thin wrapper that inserts every node of the snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "sim/field.hpp"

namespace jrsnd::sim {

class SpatialIndex {
 public:
  /// An empty index with capacity for raw node ids 0..node_count-1, with
  /// grid cells sized for `query_radius` queries. Nodes enter via insert().
  SpatialIndex(const Field& field, std::size_t node_count, double query_radius);

  /// Thin snapshot wrapper: builds the empty index and inserts every node of
  /// `positions` (indexed by raw NodeId 0..n-1).
  SpatialIndex(const Field& field, const std::vector<Position>& positions, double query_radius);

  /// Adds `node` at `p`. Precondition: raw(node) < capacity, not yet present.
  void insert(NodeId node, const Position& p);

  /// Moves `node` to `p`, relinking it between cells in O(1) when the move
  /// crosses a cell border. Precondition: node was inserted.
  void update(NodeId node, const Position& p);

  /// Nodes strictly within `radius` of `center` (excluding `exclude`),
  /// ascending, appended to a cleared `out`. Zero allocations once `out` has
  /// reached its working capacity. Precondition: radius <= query radius.
  void within_into(const Position& center, double radius, NodeId exclude,
                   std::vector<NodeId>& out) const;

  /// Allocating convenience wrapper around within_into().
  [[nodiscard]] std::vector<NodeId> within(const Position& center, double radius,
                                           NodeId exclude = kInvalidNode) const;

  /// Current position of an inserted node.
  [[nodiscard]] const Position& position(NodeId node) const;

  /// All positions, indexed by raw node id (valid only for inserted nodes).
  [[nodiscard]] std::span<const Position> positions() const noexcept { return positions_; }

  /// True once `node` has been inserted.
  [[nodiscard]] bool contains(NodeId node) const noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return positions_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return inserted_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_size_; }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  [[nodiscard]] std::size_t cell_of(const Position& p) const noexcept;
  void link(std::uint32_t idx, std::size_t cell) noexcept;
  void unlink(std::uint32_t idx) noexcept;

  double cell_size_;
  std::size_t cols_;
  std::size_t rows_;
  std::size_t inserted_ = 0;
  std::vector<Position> positions_;      // per node: owned, updated in place
  std::vector<std::uint32_t> cell_head_; // per cell: first member or kNone
  std::vector<std::uint32_t> next_;      // per node: intrusive list links
  std::vector<std::uint32_t> prev_;
  std::vector<std::uint32_t> cell_idx_;  // per node: current cell or kNone
};

}  // namespace jrsnd::sim
