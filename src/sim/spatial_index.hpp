// Uniform-grid spatial index for O(1)-neighborhood range queries.
//
// The topology builder needs "all nodes within radius a of p" for 2000
// nodes; a grid with cell size = query radius reduces that to scanning the
// 3x3 cell neighborhood.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "sim/field.hpp"

namespace jrsnd::sim {

class SpatialIndex {
 public:
  /// Builds the index over `positions` (indexed by raw NodeId 0..n-1) with
  /// grid cells sized for `query_radius` queries.
  SpatialIndex(const Field& field, const std::vector<Position>& positions, double query_radius);

  /// Nodes strictly within `radius` of `center` (excluding `exclude`).
  /// Precondition: radius <= query radius given at construction.
  [[nodiscard]] std::vector<NodeId> within(const Position& center, double radius,
                                           NodeId exclude = kInvalidNode) const;

 private:
  [[nodiscard]] std::size_t cell_of(const Position& p) const noexcept;

  double cell_size_;
  std::size_t cols_;
  std::size_t rows_;
  const std::vector<Position>& positions_;
  std::vector<std::vector<std::uint32_t>> cells_;
};

}  // namespace jrsnd::sim
