#include "sim/spatial_index.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace jrsnd::sim {

SpatialIndex::SpatialIndex(const Field& field, const std::vector<Position>& positions,
                           double query_radius)
    : cell_size_(std::max(query_radius, 1e-9)),
      cols_(static_cast<std::size_t>(std::ceil(field.width() / cell_size_)) + 1),
      rows_(static_cast<std::size_t>(std::ceil(field.height() / cell_size_)) + 1),
      positions_(positions),
      cells_(cols_ * rows_) {
  for (std::uint32_t i = 0; i < positions.size(); ++i) {
    cells_[cell_of(positions[i])].push_back(i);
  }
}

std::size_t SpatialIndex::cell_of(const Position& p) const noexcept {
  const auto cx = std::min(static_cast<std::size_t>(std::max(p.x, 0.0) / cell_size_), cols_ - 1);
  const auto cy = std::min(static_cast<std::size_t>(std::max(p.y, 0.0) / cell_size_), rows_ - 1);
  return cy * cols_ + cx;
}

std::vector<NodeId> SpatialIndex::within(const Position& center, double radius,
                                         NodeId exclude) const {
  std::vector<NodeId> out;
  const auto cx = std::min(static_cast<std::size_t>(std::max(center.x, 0.0) / cell_size_),
                           cols_ - 1);
  const auto cy = std::min(static_cast<std::size_t>(std::max(center.y, 0.0) / cell_size_),
                           rows_ - 1);
  const std::size_t x_lo = cx > 0 ? cx - 1 : 0;
  const std::size_t y_lo = cy > 0 ? cy - 1 : 0;
  const std::size_t x_hi = std::min(cx + 1, cols_ - 1);
  const std::size_t y_hi = std::min(cy + 1, rows_ - 1);
  const double r2 = radius * radius;

  for (std::size_t y = y_lo; y <= y_hi; ++y) {
    for (std::size_t x = x_lo; x <= x_hi; ++x) {
      for (const std::uint32_t idx : cells_[y * cols_ + x]) {
        if (node_id(idx) == exclude) continue;
        const double dx = positions_[idx].x - center.x;
        const double dy = positions_[idx].y - center.y;
        if (dx * dx + dy * dy < r2) out.push_back(node_id(idx));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace jrsnd::sim
