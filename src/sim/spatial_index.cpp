#include "sim/spatial_index.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/metrics_registry.hpp"

namespace jrsnd::sim {

SpatialIndex::SpatialIndex(const Field& field, std::size_t node_count, double query_radius)
    : cell_size_(std::max(query_radius, 1e-9)),
      cols_(static_cast<std::size_t>(std::ceil(field.width() / cell_size_)) + 1),
      rows_(static_cast<std::size_t>(std::ceil(field.height() / cell_size_)) + 1),
      positions_(node_count),
      cell_head_(cols_ * rows_, kNone),
      next_(node_count, kNone),
      prev_(node_count, kNone),
      cell_idx_(node_count, kNone) {}

SpatialIndex::SpatialIndex(const Field& field, const std::vector<Position>& positions,
                           double query_radius)
    : SpatialIndex(field, positions.size(), query_radius) {
  // Insert in descending id order: head insertion then leaves each cell's
  // list ascending, matching the order incremental use converges to after
  // sorting — queries sort their output either way.
  for (std::uint32_t i = static_cast<std::uint32_t>(positions.size()); i-- > 0;) {
    insert(node_id(i), positions[i]);
  }
}

std::size_t SpatialIndex::cell_of(const Position& p) const noexcept {
  const auto cx = std::min(static_cast<std::size_t>(std::max(p.x, 0.0) / cell_size_), cols_ - 1);
  const auto cy = std::min(static_cast<std::size_t>(std::max(p.y, 0.0) / cell_size_), rows_ - 1);
  return cy * cols_ + cx;
}

void SpatialIndex::link(std::uint32_t idx, std::size_t cell) noexcept {
  const std::uint32_t old_head = cell_head_[cell];
  next_[idx] = old_head;
  prev_[idx] = kNone;
  if (old_head != kNone) prev_[old_head] = idx;
  cell_head_[cell] = idx;
  cell_idx_[idx] = static_cast<std::uint32_t>(cell);
}

void SpatialIndex::unlink(std::uint32_t idx) noexcept {
  const std::uint32_t nxt = next_[idx];
  const std::uint32_t prv = prev_[idx];
  if (prv != kNone) {
    next_[prv] = nxt;
  } else {
    cell_head_[cell_idx_[idx]] = nxt;
  }
  if (nxt != kNone) prev_[nxt] = prv;
}

void SpatialIndex::insert(NodeId node, const Position& p) {
  const std::uint32_t idx = raw(node);
  if (idx >= positions_.size()) throw std::out_of_range("SpatialIndex::insert: id beyond capacity");
  if (cell_idx_[idx] != kNone) throw std::invalid_argument("SpatialIndex::insert: already present");
  positions_[idx] = p;
  link(idx, cell_of(p));
  ++inserted_;
}

void SpatialIndex::update(NodeId node, const Position& p) {
  const std::uint32_t idx = raw(node);
  if (idx >= positions_.size() || cell_idx_[idx] == kNone) {
    throw std::out_of_range("SpatialIndex::update: node not present");
  }
  positions_[idx] = p;
  const std::size_t cell = cell_of(p);
  JRSND_COUNT("sim.index.updates");
  if (cell == cell_idx_[idx]) return;
  unlink(idx);
  link(idx, cell);
  JRSND_COUNT("sim.index.cell_moves");
}

bool SpatialIndex::contains(NodeId node) const noexcept {
  const std::uint32_t idx = raw(node);
  return idx < cell_idx_.size() && cell_idx_[idx] != kNone;
}

const Position& SpatialIndex::position(NodeId node) const {
  const std::uint32_t idx = raw(node);
  if (idx >= positions_.size() || cell_idx_[idx] == kNone) {
    throw std::out_of_range("SpatialIndex::position");
  }
  return positions_[idx];
}

void SpatialIndex::within_into(const Position& center, double radius, NodeId exclude,
                               std::vector<NodeId>& out) const {
  out.clear();
  JRSND_COUNT("sim.index.queries");
  const auto cx = std::min(static_cast<std::size_t>(std::max(center.x, 0.0) / cell_size_),
                           cols_ - 1);
  const auto cy = std::min(static_cast<std::size_t>(std::max(center.y, 0.0) / cell_size_),
                           rows_ - 1);
  const std::size_t x_lo = cx > 0 ? cx - 1 : 0;
  const std::size_t y_lo = cy > 0 ? cy - 1 : 0;
  const std::size_t x_hi = std::min(cx + 1, cols_ - 1);
  const std::size_t y_hi = std::min(cy + 1, rows_ - 1);
  const double r2 = radius * radius;

  for (std::size_t y = y_lo; y <= y_hi; ++y) {
    for (std::size_t x = x_lo; x <= x_hi; ++x) {
      for (std::uint32_t idx = cell_head_[y * cols_ + x]; idx != kNone; idx = next_[idx]) {
        if (node_id(idx) == exclude) continue;
        const double dx = positions_[idx].x - center.x;
        const double dy = positions_[idx].y - center.y;
        if (dx * dx + dy * dy < r2) out.push_back(node_id(idx));
      }
    }
  }
  std::sort(out.begin(), out.end());
}

std::vector<NodeId> SpatialIndex::within(const Position& center, double radius,
                                         NodeId exclude) const {
  std::vector<NodeId> out;
  within_into(center, radius, exclude, out);
  return out;
}

}  // namespace jrsnd::sim
