// The deployment field (paper §VI-B: 5000 x 5000 m^2, range a = 300 m).
#pragma once

#include <cmath>

namespace jrsnd::sim {

struct Position {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Position&) const = default;
};

[[nodiscard]] inline double distance(const Position& a, const Position& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

class Field {
 public:
  Field(double width_m, double height_m);

  [[nodiscard]] double width() const noexcept { return width_; }
  [[nodiscard]] double height() const noexcept { return height_; }
  [[nodiscard]] double area() const noexcept { return width_ * height_; }

  [[nodiscard]] bool contains(const Position& p) const noexcept;

  /// Clamps p into the field (used by mobility models at boundaries).
  [[nodiscard]] Position clamp(Position p) const noexcept;

 private:
  double width_;
  double height_;
};

/// Expected overlap area of two unit-distance-apart transmission disks of
/// radius a whose centers are physical neighbors, averaged over the distance
/// distribution (paper Thm 3 after [11]): (pi - 3*sqrt(3)/4) a^2.
[[nodiscard]] double expected_overlap_area(double radius) noexcept;

/// The paper's common-neighbor coefficient 1 - 3*sqrt(3)/(4*pi): the
/// expected fraction of a node's neighbors that also neighbor a random
/// physical neighbor of it.
[[nodiscard]] double common_neighbor_fraction() noexcept;

}  // namespace jrsnd::sim
